"""Kernel cost model tests."""

import pytest

from repro.errors import ConfigurationError
from repro.gemm import FP16_FP32, FP64, Blocking, GemmProblem, TileGrid
from repro.gpu import A100, HYPOTHETICAL_4SM, KernelCostModel, SegmentKind
from repro.schedules import data_parallel_schedule, fixed_split_schedule, stream_k_schedule


def model(blocking, dtype, gpu=A100):
    return KernelCostModel(gpu=gpu, blocking=blocking, dtype=dtype)


class TestEfficiencyCurve:
    def test_shipped_blockings_hit_99_percent(self):
        assert model(Blocking(64, 64, 16), FP64).pipeline_efficiency == pytest.approx(0.99, abs=1e-6)
        assert model(Blocking(128, 128, 32), FP16_FP32).pipeline_efficiency == pytest.approx(0.99, abs=1e-6)

    def test_smaller_tiles_less_efficient(self):
        big = model(Blocking(128, 128, 32), FP16_FP32).pipeline_efficiency
        small = model(Blocking(64, 64, 64), FP16_FP32).pipeline_efficiency
        tiny = model(Blocking(32, 32, 32), FP16_FP32).pipeline_efficiency
        assert tiny < small < big

    def test_fp16_half_tiles_near_half_rate(self):
        """q=2.8 anchors half-work tiles at ~48% of peak."""
        eff = model(Blocking(64, 128, 32), FP16_FP32).pipeline_efficiency
        assert 0.40 < eff < 0.60

    def test_fp64_curve_is_gentler(self):
        fp64_half = model(Blocking(32, 64, 16), FP64).pipeline_efficiency
        fp16_half = model(Blocking(64, 128, 32), FP16_FP32).pipeline_efficiency
        assert fp64_half > fp16_half

    def test_bigger_than_default_saturates(self):
        eff = model(Blocking(128, 256, 32), FP16_FP32).pipeline_efficiency
        assert eff > 0.99


class TestComponentCosts:
    def test_cycles_per_iter_formula(self):
        m = model(Blocking(128, 128, 32), FP16_FP32)
        expect = 128 * 128 * 32 / (1024.0 * m.pipeline_efficiency)
        assert m.cycles_per_iter == pytest.approx(expect)

    def test_abcd_positive_and_consistent(self):
        m = model(Blocking(64, 64, 16), FP64)
        a, b, c, d = m.abcd()
        assert a > 0 and b > 0 and c > 0 and d > 0
        assert a == pytest.approx(m.prologue_cycles + m.store_tile_cycles)

    def test_fixup_in_paper_band(self):
        """Figure 8c implies d in (4c, 16c) for the fp16 blocking."""
        m = model(Blocking(128, 128, 32), FP16_FP32)
        assert 4 * m.cycles_per_iter < m.fixup_cycles_per_peer < 16 * m.cycles_per_iter

    def test_tile_accum_bytes(self):
        m = model(Blocking(128, 128, 32), FP16_FP32)
        assert m.tile_accum_bytes == 128 * 128 * 4  # fp32 accumulators

    def test_unknown_dtype_rate_fails_fast(self):
        from repro.gemm.dtypes import DtypeConfig
        import numpy as np
        exotic = DtypeConfig(
            name="fp8", input_dtype=np.dtype(np.float16),
            accum_dtype=np.dtype(np.float32), input_bytes=1, output_bytes=4,
            default_blocking=(128, 128, 64), peak_tflops_a100=400.0,
            compute_bound_ops_per_byte=800.0,
        )
        with pytest.raises(ConfigurationError):
            model(Blocking(128, 128, 64), exotic)


class TestBuildTasks:
    @pytest.fixture
    def grid(self):
        return TileGrid(GemmProblem(64, 48, 40, dtype=FP64), Blocking(16, 16, 8))

    def test_data_parallel_tasks(self, grid):
        m = model(grid.blocking, FP64, HYPOTHETICAL_4SM)
        tasks = m.build_tasks(data_parallel_schedule(grid))
        assert len(tasks) == grid.num_tiles
        for t in tasks:
            kinds = [s.kind for s in t.segments]
            assert kinds == [
                SegmentKind.PROLOGUE,
                SegmentKind.COMPUTE,
                SegmentKind.STORE_TILE,
            ]

    def test_fixed_split_owner_has_wait_fixup_pairs(self, grid):
        m = model(grid.blocking, FP64, HYPOTHETICAL_4SM)
        tasks = m.build_tasks(fixed_split_schedule(grid, 3))
        owners = [t for t in tasks if any(s.kind is SegmentKind.FIXUP for s in t.segments)]
        assert len(owners) == grid.num_tiles
        for t in owners:
            waits = [s for s in t.segments if s.kind is SegmentKind.WAIT]
            fixes = [s for s in t.segments if s.kind is SegmentKind.FIXUP]
            assert len(waits) == len(fixes) == 2

    def test_contributor_signals_own_slot(self, grid):
        m = model(grid.blocking, FP64, HYPOTHETICAL_4SM)
        tasks = m.build_tasks(stream_k_schedule(grid, 3))
        for t in tasks:
            sig = t.signals_slot
            if sig is not None:
                assert sig == t.cta

    def test_blocking_mismatch_rejected(self, grid):
        m = model(Blocking(32, 32, 8), FP64, HYPOTHETICAL_4SM)
        with pytest.raises(ConfigurationError, match="blocked"):
            m.build_tasks(data_parallel_schedule(grid))

    def test_compute_cycles_proportional_to_iters(self, grid):
        m = model(grid.blocking, FP64, HYPOTHETICAL_4SM)
        tasks = m.build_tasks(stream_k_schedule(grid, 5))
        for task, item in zip(tasks, stream_k_schedule(grid, 5).work_items):
            compute = sum(
                s.cycles for s in task.segments if s.kind is SegmentKind.COMPUTE
            )
            assert compute == pytest.approx(m.cycles_per_iter * item.total_iters)
