"""Shared-memory occupancy tests."""

import pytest

from repro.errors import ConfigurationError
from repro.gemm import FP16_FP32, FP64, Blocking
from repro.gpu import (
    A100,
    estimate_occupancy,
    max_streamk_grid,
    smem_bytes_per_cta,
)


class TestSmemFootprint:
    def test_fp16_shipped_blocking(self):
        # 2 stages x (128*32 + 32*128) x 2 B = 32 KiB
        assert smem_bytes_per_cta(Blocking(128, 128, 32), FP16_FP32) == 32768

    def test_fp64_shipped_blocking(self):
        # 2 stages x (64*16 + 16*64) x 8 B = 32 KiB
        assert smem_bytes_per_cta(Blocking(64, 64, 16), FP64) == 32768


class TestOccupancy:
    def test_shipped_blockings_fit(self):
        assert estimate_occupancy(Blocking(128, 128, 32), FP16_FP32) >= 1

    def test_small_tiles_get_more_residency(self):
        big = estimate_occupancy(Blocking(128, 128, 32), FP16_FP32)
        small = estimate_occupancy(Blocking(32, 32, 32), FP16_FP32)
        assert small > big

    def test_oversized_blocking_rejected(self):
        with pytest.raises(ConfigurationError):
            estimate_occupancy(Blocking(1024, 1024, 64), FP16_FP32)

    def test_hardware_cap(self):
        assert estimate_occupancy(Blocking(8, 8, 8), FP64) <= 32


class TestStreamKGridBound:
    def test_bound_respects_gpu_occupancy(self):
        assert max_streamk_grid(A100, Blocking(128, 128, 32), FP16_FP32) == 108

    def test_bound_scales_with_sms(self):
        half = A100.with_sms(54)
        assert max_streamk_grid(half, Blocking(128, 128, 32), FP16_FP32) == 54
