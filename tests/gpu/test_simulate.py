"""End-to-end kernel simulation tests."""

import pytest

from repro.errors import ConfigurationError
from repro.gemm import FP16_FP32, FP64, Blocking, GemmProblem, TileGrid
from repro.gpu import A100, HYPOTHETICAL_4SM, simulate_kernel
from repro.schedules import data_parallel_schedule, stream_k_schedule


class TestKernelResult:
    @pytest.fixture
    def result(self):
        grid = TileGrid(GemmProblem(384, 384, 128, dtype=FP16_FP32), Blocking(128, 128, 32))
        return simulate_kernel(data_parallel_schedule(grid), HYPOTHETICAL_4SM)

    def test_time_composition(self, result):
        assert result.time_s == pytest.approx(
            max(result.compute_time_s, result.memory_time_s)
            + result.launch_latency_s
        )

    def test_tflops_consistent(self, result):
        assert result.tflops == pytest.approx(result.flops / result.time_s / 1e12)

    def test_percent_of_peak_bounded(self, result):
        assert 0 < result.percent_of_peak <= 100.0

    def test_bound_label(self, result):
        assert result.bound in ("compute", "memory")

    def test_trace_attached(self, result):
        assert result.trace.ctas


class TestFigure1Numbers:
    """The canonical sanity anchor: Figure 1's utilization ceilings."""

    def test_75_percent_ceiling(self):
        grid = TileGrid(GemmProblem(384, 384, 128, dtype=FP16_FP32), Blocking(128, 128, 32))
        res = simulate_kernel(data_parallel_schedule(grid), HYPOTHETICAL_4SM)
        assert res.trace.utilization() == pytest.approx(0.75, abs=1e-9)

    def test_90_percent_ceiling(self):
        grid = TileGrid(GemmProblem(384, 384, 128, dtype=FP16_FP32), Blocking(128, 64, 32))
        res = simulate_kernel(data_parallel_schedule(grid), HYPOTHETICAL_4SM)
        assert res.trace.utilization() == pytest.approx(0.90, abs=1e-9)

    def test_stream_k_near_perfect(self):
        grid = TileGrid(GemmProblem(384, 384, 128, dtype=FP16_FP32), Blocking(128, 128, 32))
        res = simulate_kernel(stream_k_schedule(grid, 4), HYPOTHETICAL_4SM)
        assert res.trace.utilization() > 0.93


class TestMemoryModels:
    def test_both_models_run(self):
        grid = TileGrid(GemmProblem(96, 96, 64, dtype=FP64), Blocking(16, 16, 8))
        sched = stream_k_schedule(grid, 4)
        ana = simulate_kernel(sched, HYPOTHETICAL_4SM, memory_model="analytical")
        sim = simulate_kernel(sched, HYPOTHETICAL_4SM, memory_model="cache_sim")
        assert ana.traffic.total > 0 and sim.traffic.total > 0

    def test_unknown_model_rejected(self):
        grid = TileGrid(GemmProblem(32, 32, 32, dtype=FP64), Blocking(16, 16, 8))
        with pytest.raises(ConfigurationError):
            simulate_kernel(data_parallel_schedule(grid), A100, memory_model="psychic")

    def test_validate_flag_checks_schedule(self):
        grid = TileGrid(GemmProblem(32, 32, 32, dtype=FP64), Blocking(16, 16, 8))
        simulate_kernel(data_parallel_schedule(grid), A100, validate=True)


class TestPhysicalSanity:
    def test_big_square_gemm_near_peak(self):
        """A large well-quantized GEMM should reach >90% of peak."""
        grid = TileGrid(
            GemmProblem(8192, 8192, 4096, dtype=FP16_FP32), Blocking(128, 128, 32)
        )
        # 64x64 = 4096 tiles on 108 SMs -> ~38 waves: tiny quantization loss
        res = simulate_kernel(data_parallel_schedule(grid), A100)
        assert res.percent_of_peak > 85.0

    def test_tiny_problem_is_memory_or_launch_bound(self):
        grid = TileGrid(GemmProblem(128, 128, 128, dtype=FP16_FP32), Blocking(128, 128, 32))
        res = simulate_kernel(data_parallel_schedule(grid), A100)
        assert res.percent_of_peak < 10.0

    def test_sparse_grid_gets_less_bandwidth(self):
        """One-CTA grids cannot saturate HBM: memory time reflects the
        per-SM bandwidth cap."""
        grid = TileGrid(GemmProblem(128, 128, 8192, dtype=FP16_FP32), Blocking(128, 128, 32))
        res = simulate_kernel(data_parallel_schedule(grid), A100)
        expected_bw = A100.sm_max_bandwidth  # g = 1
        assert res.memory_time_s == pytest.approx(
            res.traffic.total / expected_bw
        )
