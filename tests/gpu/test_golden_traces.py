"""Golden-trace regression tests for the non-A100 presets.

Each new hardware preset ships a committed reduced-scale canonical
Stream-K trace under ``docs/traces/`` (like ``fig2_stream_k_g4.json``).
These tests regenerate each trace in-process with the same canonical
knobs the ``repro trace`` CLI uses and require the export to match the
committed file event-for-event — so an edit to a preset's spec (SM
count, rates, occupancy) or to the cost model cannot silently shift the
schedules the registry promises.  If a change is intentional, regenerate
with::

    python -m repro trace 640 640 256 --gpu <preset> --schedule stream_k \
        --out docs/traces/stream_k_<preset>.json
"""

import json
import os

import pytest

from repro.gemm.dtypes import get_dtype_config
from repro.gemm.problem import GemmProblem
from repro.gemm.tiling import Blocking, TileGrid
from repro.gpu.spec import get_gpu
from repro.harness.runner import run_schedule
from repro.obs.export import trace_to_chrome, validate_chrome_trace
from repro.schedules.registry import make_decomposition

TRACES_DIR = os.path.join(
    os.path.dirname(__file__), "..", "..", "docs", "traces"
)

#: (preset, m, n, k) — the committed canonical Stream-K trace per preset.
GOLDEN = [
    ("h100_sxm", 640, 640, 256),
    ("v100_sxm2", 640, 640, 256),
    ("rtx3090", 640, 640, 256),
]


def _fresh_trace(preset: str, m: int, n: int, k: int):
    gpu = get_gpu(preset)
    dtype = get_dtype_config("fp16_fp32")
    grid = TileGrid(GemmProblem(m, n, k, dtype=dtype), Blocking(*dtype.default_blocking))
    g = max(1, min(gpu.num_sms, grid.total_iters))
    schedule = make_decomposition("stream_k", g=g).build(grid)
    run = run_schedule(schedule, gpu, execute_numeric=False)
    return gpu, run.result.trace


class TestPresetGoldenTraces:
    @pytest.mark.parametrize("preset,m,n,k", GOLDEN)
    def test_committed_trace_is_fresh(self, preset, m, n, k):
        path = os.path.join(TRACES_DIR, "stream_k_%s.json" % preset)
        with open(path) as fh:
            committed = json.load(fh)
        validate_chrome_trace(committed)
        gpu, trace = _fresh_trace(preset, m, n, k)
        fresh = trace_to_chrome(
            trace,
            name="stream_k %dx%dx%d fp16_fp32 on %s" % (m, n, k, preset),
            clock_hz=gpu.clock_hz,
        )
        assert committed["traceEvents"] == fresh["traceEvents"], (
            "docs/traces/stream_k_%s.json is stale — the %s preset or the "
            "cost model changed; regenerate it if the change is intended "
            "(see this module's docstring)" % (preset, preset)
        )

    @pytest.mark.parametrize("preset,m,n,k", GOLDEN)
    def test_trace_reflects_preset_geometry(self, preset, m, n, k):
        # The golden traces are per-device distinct: CTA count follows the
        # preset's SM count (g = min(num_sms, total_iters)) and the track
        # count its total CTA slots.
        path = os.path.join(TRACES_DIR, "stream_k_%s.json" % preset)
        with open(path) as fh:
            committed = json.load(fh)
        gpu = get_gpu(preset)
        grid = TileGrid(
            GemmProblem(m, n, k, dtype=get_dtype_config("fp16_fp32")),
            Blocking(128, 128, 32),
        )
        expected_g = min(gpu.num_sms, grid.total_iters)
        ctas = {
            e["args"]["cta"]
            for e in committed["traceEvents"]
            if e.get("ph") == "X" and "cta" in e.get("args", {})
        }
        assert len(ctas) == expected_g

    def test_goldens_are_pairwise_distinct(self):
        docs = []
        for preset, _, _, _ in GOLDEN:
            path = os.path.join(TRACES_DIR, "stream_k_%s.json" % preset)
            with open(path) as fh:
                docs.append(json.load(fh)["traceEvents"])
        assert docs[0] != docs[1] != docs[2]
        assert docs[0] != docs[2]
