"""Closed-form makespan tests against the discrete-event executor.

The corpus harness runs on these closed forms, so their agreement with the
executor is the load-bearing guarantee of the whole evaluation: exact for
data-parallel, persistent-DP, Stream-K, and the two-tile hybrid; bounded
(documented approximation) for multi-wave fixed-split.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.gemm import FP16_FP32, FP64, Blocking, GemmProblem, TileGrid
from repro.gpu import (
    A100,
    HYPOTHETICAL_4SM,
    Executor,
    KernelCostModel,
    basic_streamk_makespan,
    data_parallel_makespan,
    fixed_split_makespan,
    one_wave_makespan,
    persistent_dp_makespan,
    two_tile_hybrid_makespan,
)
from repro.schedules import (
    data_parallel_schedule,
    dp_one_tile_schedule,
    fixed_split_schedule,
    persistent_data_parallel_schedule,
    stream_k_schedule,
    two_tile_schedule,
)


def grid_of(tiles_m, tiles_n, ipt, dtype=FP64):
    p = GemmProblem(tiles_m * 16, tiles_n * 16, ipt * 8, dtype=dtype)
    return TileGrid(p, Blocking(16, 16, 8))


def executor_makespan(schedule, gpu, cost):
    return Executor(gpu.total_cta_slots).run(cost.build_tasks(schedule)).makespan


@pytest.fixture
def gpu():
    return HYPOTHETICAL_4SM


@pytest.fixture
def cost(gpu):
    return KernelCostModel(gpu=gpu, blocking=Blocking(16, 16, 8), dtype=FP64)


class TestDataParallelExact:
    @settings(max_examples=25, deadline=None)
    @given(
        tiles_m=st.integers(1, 10),
        tiles_n=st.integers(1, 10),
        ipt=st.integers(1, 20),
    )
    def test_matches_executor_exactly(self, tiles_m, tiles_n, ipt):
        gpu = HYPOTHETICAL_4SM
        grid = grid_of(tiles_m, tiles_n, ipt)
        cost = KernelCostModel(gpu=gpu, blocking=grid.blocking, dtype=FP64)
        ev = executor_makespan(data_parallel_schedule(grid), gpu, cost)
        cf = data_parallel_makespan(grid.num_tiles, gpu.num_sms, ipt, cost)
        assert cf == pytest.approx(ev, rel=1e-12)

    @settings(max_examples=20, deadline=None)
    @given(
        tiles_m=st.integers(1, 8),
        tiles_n=st.integers(1, 8),
        ipt=st.integers(1, 15),
    )
    def test_persistent_dp_matches_executor(self, tiles_m, tiles_n, ipt):
        gpu = HYPOTHETICAL_4SM
        grid = grid_of(tiles_m, tiles_n, ipt)
        cost = KernelCostModel(gpu=gpu, blocking=grid.blocking, dtype=FP64)
        sched = persistent_data_parallel_schedule(grid, gpu.num_sms)
        ev = executor_makespan(sched, gpu, cost)
        cf = persistent_dp_makespan(grid.num_tiles, gpu.num_sms, ipt, cost)
        assert cf == pytest.approx(ev, rel=1e-12)


class TestStreamKExact:
    @settings(max_examples=40, deadline=None)
    @given(
        tiles_m=st.integers(1, 8),
        tiles_n=st.integers(1, 8),
        ipt=st.integers(1, 24),
        g=st.integers(1, 4),
    )
    def test_basic_streamk_matches_executor(self, tiles_m, tiles_n, ipt, g):
        gpu = HYPOTHETICAL_4SM
        grid = grid_of(tiles_m, tiles_n, ipt)
        cost = KernelCostModel(gpu=gpu, blocking=grid.blocking, dtype=FP64)
        ev = executor_makespan(stream_k_schedule(grid, g), gpu, cost)
        cf = basic_streamk_makespan(grid.num_tiles, g, ipt, cost)
        assert cf == pytest.approx(ev, rel=1e-9)

    def test_large_grid_on_a100(self):
        gpu = A100
        grid = TileGrid(
            GemmProblem(512, 2048, 256, dtype=FP16_FP32), Blocking(128, 128, 32)
        )
        cost = KernelCostModel(gpu=gpu, blocking=grid.blocking, dtype=FP16_FP32)
        for g in (7, 64, 107, 108):
            ev = executor_makespan(stream_k_schedule(grid, g), gpu, cost)
            cf = basic_streamk_makespan(grid.num_tiles, g, grid.iters_per_tile, cost)
            assert cf == pytest.approx(ev, rel=1e-9), "g=%d" % g


class TestTwoTileExact:
    @settings(max_examples=40, deadline=None)
    @given(
        tiles_m=st.integers(1, 10),
        tiles_n=st.integers(1, 10),
        ipt=st.integers(1, 24),
    )
    def test_matches_executor(self, tiles_m, tiles_n, ipt):
        gpu = HYPOTHETICAL_4SM
        grid = grid_of(tiles_m, tiles_n, ipt)
        cost = KernelCostModel(gpu=gpu, blocking=grid.blocking, dtype=FP64)
        ev = executor_makespan(two_tile_schedule(grid, gpu.num_sms), gpu, cost)
        cf = two_tile_hybrid_makespan(grid.num_tiles, gpu.num_sms, ipt, cost)
        assert cf == pytest.approx(ev, rel=1e-9)


class TestOneWaveExact:
    @settings(max_examples=25, deadline=None)
    @given(
        tiles_m=st.integers(1, 6),
        tiles_n=st.integers(1, 6),
        ipt=st.integers(1, 16),
        g=st.integers(1, 4),
    )
    def test_stream_k_one_wave(self, tiles_m, tiles_n, ipt, g):
        gpu = HYPOTHETICAL_4SM
        grid = grid_of(tiles_m, tiles_n, ipt)
        cost = KernelCostModel(gpu=gpu, blocking=grid.blocking, dtype=FP64)
        sched = stream_k_schedule(grid, g)
        ev = executor_makespan(sched, gpu, cost)
        cf = one_wave_makespan(sched, cost, gpu.total_cta_slots)
        assert cf == pytest.approx(ev, rel=1e-12)

    def test_dp_one_tile_one_wave(self, gpu, cost):
        grid = grid_of(7, 3, 5)
        sched = dp_one_tile_schedule(grid, gpu.num_sms)
        ev = executor_makespan(sched, gpu, cost)
        cf = one_wave_makespan(sched, cost, gpu.total_cta_slots)
        assert cf == pytest.approx(ev, rel=1e-12)

    def test_rejects_multiwave_grid(self, gpu, cost):
        grid = grid_of(5, 5, 4)
        sched = data_parallel_schedule(grid)  # 25 CTAs > 4 slots
        with pytest.raises(ConfigurationError):
            one_wave_makespan(sched, cost, gpu.total_cta_slots)


class TestFixedSplitBounded:
    """The one documented approximation: must stay within 25% of the
    executor across a broad random sample."""

    @settings(max_examples=40, deadline=None)
    @given(
        tiles_m=st.integers(1, 8),
        tiles_n=st.integers(1, 8),
        ipt=st.integers(1, 32),
        s=st.sampled_from([2, 4, 8]),
    )
    def test_within_tolerance(self, tiles_m, tiles_n, ipt, s):
        gpu = HYPOTHETICAL_4SM
        grid = grid_of(tiles_m, tiles_n, ipt)
        cost = KernelCostModel(gpu=gpu, blocking=grid.blocking, dtype=FP64)
        ev = executor_makespan(fixed_split_schedule(grid, s), gpu, cost)
        cf = fixed_split_makespan(grid.num_tiles, s, gpu.num_sms, ipt, cost)
        assert abs(cf / ev - 1.0) < 0.30

    def test_s1_is_exact_dp(self, gpu, cost):
        grid = grid_of(5, 4, 7)
        ev = executor_makespan(fixed_split_schedule(grid, 1), gpu, cost)
        cf = fixed_split_makespan(grid.num_tiles, 1, gpu.num_sms, 7, cost)
        assert cf == pytest.approx(ev, rel=1e-12)

    def test_single_wave_is_exact(self, gpu, cost):
        grid = grid_of(1, 2, 16)  # 2 tiles x s=2 = 4 CTAs = one wave
        ev = executor_makespan(fixed_split_schedule(grid, 2), gpu, cost)
        cf = fixed_split_makespan(2, 2, gpu.num_sms, 16, cost)
        assert cf == pytest.approx(ev, rel=1e-12)
