"""Trace rendering and occupancy-aware execution tests."""

import dataclasses

import pytest

from repro.gemm import FP16_FP32, FP64, Blocking, GemmProblem, TileGrid
from repro.gpu import (
    HYPOTHETICAL_4SM,
    Executor,
    ExecutionTrace,
    KernelCostModel,
    max_streamk_grid,
)
from repro.schedules import data_parallel_schedule, fixed_split_schedule, stream_k_schedule


def trace_of(sched, gpu):
    cost = KernelCostModel(
        gpu=gpu, blocking=sched.grid.blocking, dtype=sched.grid.problem.dtype
    )
    return Executor(gpu.total_cta_slots).run(cost.build_tasks(sched))


class TestRenderAscii:
    @pytest.fixture
    def grid(self):
        return TileGrid(GemmProblem(384, 384, 128, dtype=FP16_FP32), Blocking(128, 128, 32))

    def test_one_row_per_slot(self, grid):
        art = trace_of(data_parallel_schedule(grid), HYPOTHETICAL_4SM).render_ascii()
        lines = art.splitlines()
        assert len(lines) == 4
        assert all(line.startswith("SM") for line in lines)

    def test_quantization_visible_as_idle(self, grid):
        """9 tiles on 4 SMs: three rows end busy, one row's last third is
        idle — Figure 1a in ASCII."""
        art = trace_of(data_parallel_schedule(grid), HYPOTHETICAL_4SM).render_ascii(width=60)
        idle_tails = sum(1 for line in art.splitlines() if line.rstrip("|").endswith("."))
        assert idle_tails == 3  # three slots idle in the last wave

    def test_waits_marked(self, grid):
        sched = fixed_split_schedule(grid, 2)
        art = trace_of(sched, HYPOTHETICAL_4SM).render_ascii(width=120)
        assert "~" in art

    def test_empty_trace(self):
        art = ExecutionTrace(num_sm_slots=2).render_ascii(width=10)
        assert art.splitlines() == ["SM0   |..........|", "SM1   |..........|"]


class TestOccupancyGreaterThanOne:
    def test_double_occupancy_doubles_slots_and_halves_waves(self):
        gpu1 = HYPOTHETICAL_4SM
        gpu2 = dataclasses.replace(HYPOTHETICAL_4SM, occupancy=2)
        grid = TileGrid(GemmProblem(256, 128, 160, dtype=FP64), Blocking(16, 16, 8))
        sched = data_parallel_schedule(grid)  # 128 tiles
        t1 = trace_of(sched, gpu1)
        t2 = trace_of(sched, gpu2)
        assert gpu2.total_cta_slots == 8
        assert t2.makespan == pytest.approx(t1.makespan / 2)

    def test_streamk_grid_bound_scales_with_occupancy(self):
        gpu2 = dataclasses.replace(HYPOTHETICAL_4SM, occupancy=2)
        assert max_streamk_grid(gpu2, Blocking(64, 64, 16), FP64) == 8

    def test_streamk_uses_extra_residency(self):
        """A Stream-K grid sized to occupancy-2 residency executes without
        deadlock and in a single wave."""
        gpu2 = dataclasses.replace(HYPOTHETICAL_4SM, occupancy=2)
        grid = TileGrid(GemmProblem(64, 64, 512, dtype=FP64), Blocking(16, 16, 8))
        sched = stream_k_schedule(grid, 8)
        trace = trace_of(sched, gpu2)
        assert all(rec.start == 0.0 for rec in trace.ctas)
