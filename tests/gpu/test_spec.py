"""GpuSpec tests: the paper's hardware numbers must fall out exactly."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.gemm import FP16_FP32, FP32, FP64
from repro.gpu import A100, GPU_PRESETS, HYPOTHETICAL_4SM, GpuSpec, get_gpu


class TestA100MatchesPaper:
    def test_sm_count(self):
        assert A100.num_sms == 108

    def test_locked_clock(self):
        assert A100.clock_hz == pytest.approx(1.005e9)

    def test_fp64_peak_is_13_9_tflops(self):
        assert A100.peak_tflops(FP64) == pytest.approx(13.9, rel=1e-3)

    def test_fp16_peak_is_222_3_tflops(self):
        assert A100.peak_tflops(FP16_FP32) == pytest.approx(222.3, rel=1e-3)

    def test_tensor_core_rates(self):
        assert A100.mac_rate(FP64) == 64.0
        assert A100.mac_rate(FP16_FP32) == 1024.0


class TestDerivedQuantities:
    def test_bytes_per_cycle_per_sm(self):
        expect = A100.dram_bandwidth / (108 * 1.005e9)
        assert A100.bytes_per_cycle_per_sm == pytest.approx(expect)

    def test_total_cta_slots(self):
        assert A100.total_cta_slots == 108 * A100.occupancy

    def test_achieved_bandwidth_scales_then_saturates(self):
        one = A100.achieved_bandwidth(1)
        assert one == pytest.approx(A100.sm_max_bandwidth)
        assert A100.achieved_bandwidth(2) == pytest.approx(2 * one)
        assert A100.achieved_bandwidth(10_000) == A100.dram_bandwidth

    def test_achieved_bandwidth_floor_at_one_cta(self):
        assert A100.achieved_bandwidth(0) == pytest.approx(A100.sm_max_bandwidth)

    def test_achieved_bandwidth_vectorized(self):
        g = np.array([1, 4, 500])
        bw = A100.achieved_bandwidth(g)
        assert bw.shape == (3,)
        assert bw[-1] == A100.dram_bandwidth

    def test_with_sms_scales_bandwidth(self):
        half = A100.with_sms(54)
        assert half.num_sms == 54
        assert half.dram_bandwidth == pytest.approx(A100.dram_bandwidth / 2)
        assert half.peak_tflops(FP64) == pytest.approx(13.9 / 2, rel=1e-3)


class TestPresetsAndErrors:
    def test_presets_registered(self):
        assert set(GPU_PRESETS) == {"a100", "hypothetical_4sm"}
        assert get_gpu("a100") is A100

    def test_unknown_preset(self):
        with pytest.raises(ConfigurationError):
            get_gpu("h100")

    def test_4sm_gpu_has_4_sms(self):
        assert HYPOTHETICAL_4SM.num_sms == 4

    def test_unknown_dtype_rate_raises(self):
        gpu = GpuSpec(
            name="tiny",
            num_sms=1,
            clock_hz=1e9,
            macs_per_sm_per_cycle={"fp64": 4.0},
            dram_bandwidth=1e11,
            l2_bytes=1 << 20,
        )
        with pytest.raises(ConfigurationError, match="fp16_fp32"):
            gpu.mac_rate(FP16_FP32)
        assert gpu.mac_rate(FP64) == 4.0

    @pytest.mark.parametrize(
        "field,value",
        [
            ("num_sms", 0),
            ("clock_hz", -1.0),
            ("dram_bandwidth", 0.0),
            ("l2_line_bytes", 0),
            ("occupancy", 0),
        ],
    )
    def test_invalid_fields_rejected(self, field, value):
        kwargs = dict(
            name="bad",
            num_sms=4,
            clock_hz=1e9,
            macs_per_sm_per_cycle={"fp64": 4.0},
            dram_bandwidth=1e11,
            l2_bytes=1 << 20,
        )
        kwargs[field] = value
        with pytest.raises(ConfigurationError):
            GpuSpec(**kwargs)
