"""GpuSpec tests: the paper's hardware numbers must fall out exactly,
and the multi-backend registry (presets, JSON round trip, resolve_gpu)
must validate everything it accepts."""

import json
import os

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.gemm import BF16_FP32, FP16_FP32, FP32, FP64
from repro.gpu import (
    A100,
    DEFAULT_GPU_NAME,
    GPU_PRESETS,
    H100_SXM,
    HYPOTHETICAL_4SM,
    RTX3090,
    V100_SXM2,
    GpuSpec,
    available_gpus,
    default_gpu,
    get_gpu,
    register_gpu,
    resolve_gpu,
)


class TestA100MatchesPaper:
    def test_sm_count(self):
        assert A100.num_sms == 108

    def test_locked_clock(self):
        assert A100.clock_hz == pytest.approx(1.005e9)

    def test_fp64_peak_is_13_9_tflops(self):
        assert A100.peak_tflops(FP64) == pytest.approx(13.9, rel=1e-3)

    def test_fp16_peak_is_222_3_tflops(self):
        assert A100.peak_tflops(FP16_FP32) == pytest.approx(222.3, rel=1e-3)

    def test_tensor_core_rates(self):
        assert A100.mac_rate(FP64) == 64.0
        assert A100.mac_rate(FP16_FP32) == 1024.0


class TestDerivedQuantities:
    def test_bytes_per_cycle_per_sm(self):
        expect = A100.dram_bandwidth / (108 * 1.005e9)
        assert A100.bytes_per_cycle_per_sm == pytest.approx(expect)

    def test_total_cta_slots(self):
        assert A100.total_cta_slots == 108 * A100.occupancy

    def test_achieved_bandwidth_scales_then_saturates(self):
        one = A100.achieved_bandwidth(1)
        assert one == pytest.approx(A100.sm_max_bandwidth)
        assert A100.achieved_bandwidth(2) == pytest.approx(2 * one)
        assert A100.achieved_bandwidth(10_000) == A100.dram_bandwidth

    def test_achieved_bandwidth_floor_at_one_cta(self):
        assert A100.achieved_bandwidth(0) == pytest.approx(A100.sm_max_bandwidth)

    def test_achieved_bandwidth_vectorized(self):
        g = np.array([1, 4, 500])
        bw = A100.achieved_bandwidth(g)
        assert bw.shape == (3,)
        assert bw[-1] == A100.dram_bandwidth

    def test_with_sms_scales_bandwidth(self):
        half = A100.with_sms(54)
        assert half.num_sms == 54
        assert half.dram_bandwidth == pytest.approx(A100.dram_bandwidth / 2)
        assert half.peak_tflops(FP64) == pytest.approx(13.9 / 2, rel=1e-3)


class TestPresetsAndErrors:
    def test_presets_registered(self):
        assert {
            "a100", "h100_sxm", "v100_sxm2", "rtx3090", "hypothetical_4sm"
        } <= set(GPU_PRESETS)
        assert get_gpu("a100") is A100
        assert get_gpu("h100_sxm") is H100_SXM
        assert get_gpu("v100_sxm2") is V100_SXM2
        assert get_gpu("rtx3090") is RTX3090

    def test_unknown_preset_lists_available(self):
        with pytest.raises(ConfigurationError) as exc:
            get_gpu("tpu_v5")
        msg = str(exc.value)
        for name in available_gpus():
            assert name in msg, "error must list preset %r" % name

    def test_non_string_name_rejected(self):
        with pytest.raises(ConfigurationError):
            get_gpu(None)

    def test_default_gpu_is_the_paper_testbed(self):
        assert DEFAULT_GPU_NAME == "a100"
        assert default_gpu() is A100

    def test_4sm_gpu_has_4_sms(self):
        assert HYPOTHETICAL_4SM.num_sms == 4

    def test_unknown_dtype_rate_raises(self):
        gpu = GpuSpec(
            name="tiny",
            num_sms=1,
            clock_hz=1e9,
            macs_per_sm_per_cycle={"fp64": 4.0},
            dram_bandwidth=1e11,
            l2_bytes=1 << 20,
        )
        with pytest.raises(ConfigurationError, match="fp16_fp32"):
            gpu.mac_rate(FP16_FP32)
        assert gpu.mac_rate(FP64) == 4.0

    @pytest.mark.parametrize(
        "field,value",
        [
            ("num_sms", 0),
            ("clock_hz", -1.0),
            ("dram_bandwidth", 0.0),
            ("l2_line_bytes", 0),
            ("occupancy", 0),
        ],
    )
    def test_invalid_fields_rejected(self, field, value):
        kwargs = dict(
            name="bad",
            num_sms=4,
            clock_hz=1e9,
            macs_per_sm_per_cycle={"fp64": 4.0},
            dram_bandwidth=1e11,
            l2_bytes=1 << 20,
        )
        kwargs[field] = value
        with pytest.raises(ConfigurationError):
            GpuSpec(**kwargs)


class TestNewPresets:
    """The multi-backend presets: non-108 SM counts, distinct rate tables,
    uneven occupancy — the structural variety the cross-hardware sweeps
    rely on."""

    def test_sm_counts_are_all_distinct_and_non_108(self):
        counts = {g.num_sms for g in (H100_SXM, V100_SXM2, RTX3090)}
        assert counts == {132, 80, 82}
        assert 108 not in counts

    def test_h100_doubles_a100_tensor_rates(self):
        assert H100_SXM.mac_rate(FP64) == 2 * A100.mac_rate(FP64)
        assert H100_SXM.mac_rate(FP16_FP32) == 2 * A100.mac_rate(FP16_FP32)
        assert H100_SXM.peak_tflops(FP16_FP32) > A100.peak_tflops(FP16_FP32)
        assert H100_SXM.dram_bandwidth > A100.dram_bandwidth

    def test_v100_has_no_bf16_path(self):
        assert not V100_SXM2.supports_dtype(BF16_FP32)
        with pytest.raises(ConfigurationError, match="bf16_fp32"):
            V100_SXM2.mac_rate(BF16_FP32)
        assert V100_SXM2.mac_rate(FP16_FP32) == 512.0
        assert V100_SXM2.mac_rate(FP64) == 32.0

    def test_rtx3090_consumer_ratios(self):
        # FP64 crippled to 1:64 of FP32; FP16->FP32-accum halved vs pro parts.
        assert RTX3090.mac_rate(FP64) == 2.0
        assert RTX3090.mac_rate(FP32) == 64 * RTX3090.mac_rate(FP64)
        assert RTX3090.mac_rate(FP16_FP32) == 256.0

    def test_rtx3090_uneven_occupancy(self):
        assert RTX3090.occupancy == 2
        assert RTX3090.total_cta_slots == 164

    def test_every_preset_supports_the_paper_precisions(self):
        for gpu in GPU_PRESETS.values():
            assert gpu.supports_dtype(FP64), gpu.name
            assert gpu.supports_dtype(FP16_FP32), gpu.name
            assert gpu.peak_tflops(FP64) > 0
            assert gpu.peak_tflops(FP16_FP32) > gpu.peak_tflops(FP64)

    def test_every_preset_bandwidth_exceeds_per_sm_limit(self):
        for gpu in GPU_PRESETS.values():
            assert gpu.dram_bandwidth > gpu.sm_max_bandwidth, gpu.name


class TestJsonRoundTrip:
    def test_every_preset_round_trips_exactly(self):
        for gpu in GPU_PRESETS.values():
            clone = GpuSpec.from_json(gpu.to_json())
            assert clone == gpu, gpu.name

    def test_from_json_accepts_dict(self):
        doc = json.loads(RTX3090.to_json())
        assert GpuSpec.from_json(doc) == RTX3090

    def test_optional_keys_default(self):
        spec = GpuSpec.from_json(
            {
                "name": "mini",
                "num_sms": 8,
                "clock_hz": 1e9,
                "macs_per_sm_per_cycle": {"fp64": 4.0},
                "dram_bandwidth": 1e11,
                "l2_bytes": 1 << 20,
            }
        )
        assert spec.occupancy == 1
        assert spec.l2_line_bytes == 128
        assert spec.sm_max_bandwidth == 30.0e9

    def test_from_json_file(self, tmp_path):
        path = tmp_path / "custom.json"
        path.write_text(H100_SXM.to_json())
        assert GpuSpec.from_json_file(str(path)) == H100_SXM

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(ConfigurationError, match="cannot read"):
            GpuSpec.from_json_file(str(tmp_path / "absent.json"))


class TestFromJsonValidation:
    BASE = {
        "name": "custom",
        "num_sms": 8,
        "clock_hz": 1e9,
        "macs_per_sm_per_cycle": {"fp64": 4.0},
        "dram_bandwidth": 1e11,
        "l2_bytes": 1 << 20,
    }

    def _doc(self, **overrides):
        doc = dict(self.BASE)
        doc.update(overrides)
        return doc

    def test_unparsable_json(self):
        with pytest.raises(ConfigurationError, match="does not parse"):
            GpuSpec.from_json("{not json")

    def test_non_object_json(self):
        with pytest.raises(ConfigurationError, match="must be an object"):
            GpuSpec.from_json("[1, 2]")

    def test_missing_required_key(self):
        doc = self._doc()
        del doc["num_sms"]
        with pytest.raises(ConfigurationError, match="num_sms"):
            GpuSpec.from_json(doc)

    def test_unknown_key_rejected(self):
        with pytest.raises(ConfigurationError, match="warp_size"):
            GpuSpec.from_json(self._doc(warp_size=32))

    def test_non_positive_sm_count(self):
        with pytest.raises(ConfigurationError):
            GpuSpec.from_json(self._doc(num_sms=0))
        with pytest.raises(ConfigurationError):
            GpuSpec.from_json(self._doc(num_sms=-4))

    def test_empty_rate_table(self):
        with pytest.raises(ConfigurationError, match="non-empty"):
            GpuSpec.from_json(self._doc(macs_per_sm_per_cycle={}))

    def test_non_positive_rate(self):
        with pytest.raises(ConfigurationError, match="positive"):
            GpuSpec.from_json(
                self._doc(macs_per_sm_per_cycle={"fp64": 0.0})
            )

    def test_bandwidth_must_exceed_per_sm_bandwidth(self):
        with pytest.raises(ConfigurationError, match="sm_max_bandwidth"):
            GpuSpec.from_json(
                self._doc(dram_bandwidth=1e9, sm_max_bandwidth=30e9)
            )

    def test_mistyped_field(self):
        with pytest.raises(ConfigurationError, match="mistyped"):
            GpuSpec.from_json(self._doc(clock_hz="fast"))

    def test_empty_name(self):
        with pytest.raises(ConfigurationError, match="name"):
            GpuSpec.from_json(self._doc(name=""))


class TestResolveAndRegister:
    def test_resolve_preset_name(self):
        assert resolve_gpu("rtx3090") is RTX3090

    def test_resolve_passthrough(self):
        assert resolve_gpu(A100) is A100

    def test_resolve_json_path(self, tmp_path):
        path = tmp_path / "dev.json"
        path.write_text(V100_SXM2.to_json())
        assert resolve_gpu(str(path)) == V100_SXM2

    def test_resolve_unknown_name_lists_presets(self):
        with pytest.raises(ConfigurationError, match="available presets"):
            resolve_gpu("no_such_gpu")

    def test_resolve_bad_json_path_propagates_validation(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"name": "x"}')
        with pytest.raises(ConfigurationError, match="missing required"):
            resolve_gpu(str(path))

    def test_resolve_non_string(self):
        with pytest.raises(ConfigurationError):
            resolve_gpu(42)

    def test_register_and_lookup(self):
        spec = GpuSpec.from_json(
            {
                "name": "test_register_tmp",
                "num_sms": 6,
                "clock_hz": 1e9,
                "macs_per_sm_per_cycle": {"fp64": 8.0},
                "dram_bandwidth": 2e11,
                "l2_bytes": 1 << 21,
            }
        )
        try:
            register_gpu(spec)
            assert get_gpu("test_register_tmp") is spec
            assert resolve_gpu("test_register_tmp") is spec
            with pytest.raises(ConfigurationError, match="already registered"):
                register_gpu(spec)
            register_gpu(spec, overwrite=True)  # explicit replace is allowed
        finally:
            GPU_PRESETS.pop("test_register_tmp", None)

    def test_register_rejects_non_spec(self):
        with pytest.raises(ConfigurationError):
            register_gpu({"name": "dict"})

    def test_with_sms_preserves_sm_max_bandwidth(self):
        narrow = V100_SXM2.with_sms(8)
        assert narrow.sm_max_bandwidth == V100_SXM2.sm_max_bandwidth
        assert narrow.occupancy == V100_SXM2.occupancy
