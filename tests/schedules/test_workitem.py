"""Work-item invariant tests."""

import pytest

from repro.errors import ConfigurationError
from repro.schedules import CtaWorkItem, SegmentRole, TileSegment


def owner(tile, end, peers=()):
    return TileSegment(tile, 0, end, SegmentRole.OWNER, tuple(peers))


def contributor(tile, begin, end):
    return TileSegment(tile, begin, end, SegmentRole.CONTRIBUTOR)


class TestTileSegment:
    def test_num_iters(self):
        assert contributor(0, 2, 7).num_iters == 5

    def test_owner_must_start_at_zero(self):
        with pytest.raises(ConfigurationError, match="k=0"):
            TileSegment(0, 1, 4, SegmentRole.OWNER)

    def test_empty_range_rejected(self):
        with pytest.raises(ConfigurationError):
            TileSegment(0, 3, 3, SegmentRole.CONTRIBUTOR)

    def test_negative_tile_rejected(self):
        with pytest.raises(ConfigurationError):
            TileSegment(-1, 0, 4, SegmentRole.OWNER)

    def test_contributor_peers_rejected(self):
        with pytest.raises(ConfigurationError, match="no peers"):
            TileSegment(0, 1, 4, SegmentRole.CONTRIBUTOR, peers=(2,))

    def test_owner_properties(self):
        seg = owner(3, 8, peers=(1, 2))
        assert seg.is_owner and seg.num_peers == 2


class TestCtaWorkItem:
    def test_totals(self):
        w = CtaWorkItem(
            cta=0,
            segments=(contributor(0, 4, 8), owner(1, 8, peers=(1,))),
        )
        assert w.total_iters == 12
        assert w.stores_partials
        assert w.owned_tiles == (1,)
        assert w.total_peers == 1

    def test_empty_cta_allowed(self):
        w = CtaWorkItem(cta=5, segments=())
        assert w.total_iters == 0
        assert not w.stores_partials

    def test_two_contributors_rejected(self):
        with pytest.raises(ConfigurationError, match="at most one"):
            CtaWorkItem(
                cta=0,
                segments=(contributor(0, 4, 8), contributor(1, 2, 8)),
            )

    def test_contributor_after_dp_tiles_allowed(self):
        """dp-one-tile hybrid puts the contributor segment last."""
        w = CtaWorkItem(cta=0, segments=(owner(0, 8), contributor(1, 4, 8)))
        assert w.stores_partials

    def test_negative_cta_rejected(self):
        with pytest.raises(ConfigurationError):
            CtaWorkItem(cta=-1, segments=())
