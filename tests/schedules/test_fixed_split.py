"""Fixed-split decomposition tests (paper Algorithm 4)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.gemm import FP64, Blocking, GemmProblem, TileGrid, random_operands, reference_gemm
from repro.schedules import FixedSplit, fixed_split_schedule, split_ranges

from tests.conftest import assert_schedule_correct


class TestSplitRanges:
    def test_even_division(self):
        assert split_ranges(12, 3) == [(0, 4), (4, 8), (8, 12)]

    def test_within_one_balance(self):
        ranges = split_ranges(10, 4)
        sizes = [e - b for b, e in ranges]
        assert sizes == [3, 3, 2, 2]

    @given(total=st.integers(1, 1000), data=st.data())
    def test_property_exact_balanced_cover(self, total, data):
        parts = data.draw(st.integers(1, total))
        ranges = split_ranges(total, parts)
        assert ranges[0][0] == 0 and ranges[-1][1] == total
        for (b1, e1), (b2, _) in zip(ranges, ranges[1:]):
            assert e1 == b2 and e1 > b1
        sizes = [e - b for b, e in ranges]
        assert max(sizes) - min(sizes) <= 1  # "even share, within one"

    def test_too_many_parts_rejected(self):
        with pytest.raises(ConfigurationError):
            split_ranges(3, 4)

    def test_zero_parts_rejected(self):
        with pytest.raises(ConfigurationError):
            split_ranges(3, 0)


class TestStructure:
    def test_grid_size_is_tiles_times_s(self, small_grid):
        sched = fixed_split_schedule(small_grid, 3)
        assert sched.g == small_grid.num_tiles * 3

    def test_owner_launches_after_contributors(self, small_grid):
        """Waiter-last order: the owner of each tile has the largest CTA id
        of its group, so a spin-wait executor cannot deadlock."""
        sched = fixed_split_schedule(small_grid, 3)
        for tile in range(small_grid.num_tiles):
            owner = sched.tile_owner(tile)
            assert all(c < owner for c in sched.contributors(tile))

    def test_owner_holds_k0_slice(self, small_grid):
        sched = fixed_split_schedule(small_grid, 2)
        for w in sched.work_items:
            for seg in w.segments:
                if seg.is_owner:
                    assert seg.iter_begin == 0

    def test_s1_equals_data_parallel(self, small_grid):
        sched = fixed_split_schedule(small_grid, 1)
        assert sched.g == small_grid.num_tiles
        assert sched.total_fixup_stores == 0
        assert sched.k_aligned_fraction == 1.0

    def test_s_clamped_to_iters_per_tile(self, small_grid):
        requested = small_grid.iters_per_tile + 5
        sched = fixed_split_schedule(small_grid, requested)
        assert sched.metadata["s"] == small_grid.iters_per_tile
        assert sched.metadata["s_requested"] == requested
        sched.validate()

    def test_fixup_stores_count(self, small_grid):
        sched = fixed_split_schedule(small_grid, 4)
        assert sched.total_fixup_stores == small_grid.num_tiles * 3

    def test_invalid_s_rejected(self, small_grid):
        with pytest.raises(ConfigurationError):
            fixed_split_schedule(small_grid, 0)
        with pytest.raises(ConfigurationError):
            FixedSplit(-2)


class TestNumerics:
    @pytest.mark.parametrize("s", [1, 2, 3, 5, 7])
    def test_exact_for_any_split(self, small_grid, small_operands, s):
        a, b = small_operands
        ref = reference_gemm(small_grid.problem, a, b)
        out = fixed_split_schedule(small_grid, s).execute(a, b)
        assert np.allclose(out, ref, rtol=1e-12, atol=1e-12)

    @settings(max_examples=20, deadline=None)
    @given(
        m=st.integers(1, 50),
        n=st.integers(1, 50),
        k=st.integers(1, 60),
        s=st.integers(1, 8),
    )
    def test_property_random_shapes(self, m, n, k, s):
        p = GemmProblem(m, n, k, dtype=FP64)
        grid = TileGrid(p, Blocking(16, 16, 8))
        a, b = random_operands(p, 3)
        ref = reference_gemm(p, a, b)
        sched = fixed_split_schedule(grid, s)
        assert_schedule_correct(sched, a, b, ref)
