"""The per-schedule flatten memo: hit, miss, and eviction semantics."""

import gc

import numpy as np

from repro.gemm import FP64, Blocking, GemmProblem, TileGrid
from repro.gpu import HYPOTHETICAL_4SM
from repro.faults.sweep import build_registered_schedule
from repro.schedules import flatten_work_items
from repro.schedules.flatten import _MEMO


def _schedule():
    grid = TileGrid(GemmProblem(96, 96, 64, dtype=FP64), Blocking(16, 16, 8))
    return build_registered_schedule("stream_k", grid, HYPOTHETICAL_4SM)


class TestFlattenMemo:
    def test_same_schedule_returns_same_object(self):
        schedule = _schedule()
        assert flatten_work_items(schedule) is flatten_work_items(schedule)

    def test_distinct_schedules_do_not_share_entries(self):
        a, b = _schedule(), _schedule()
        fa, fb = flatten_work_items(a), flatten_work_items(b)
        assert fa is not fb
        np.testing.assert_array_equal(fa.kinds, fb.kinds)
        np.testing.assert_array_equal(fa.seg_off, fb.seg_off)
        np.testing.assert_array_equal(fa.slots, fb.slots)
        np.testing.assert_array_equal(fa.iters, fb.iters)

    def test_entry_evicted_when_schedule_collected(self):
        schedule = _schedule()
        flatten_work_items(schedule)
        key = id(schedule)
        assert key in _MEMO
        del schedule
        gc.collect()
        assert key not in _MEMO
