"""Hybrid schedule tests (paper Section 5.2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.gemm import FP64, Blocking, GemmProblem, TileGrid, random_operands, reference_gemm
from repro.schedules import (
    DpOneTileStreamK,
    TwoTileStreamK,
    dp_one_tile_schedule,
    persistent_data_parallel_schedule,
    two_tile_schedule,
)

from tests.conftest import assert_schedule_correct


def grid_with_tiles(tiles_m, tiles_n, ipt=5):
    p = GemmProblem(tiles_m * 16, tiles_n * 16, ipt * 8, dtype=FP64)
    return TileGrid(p, Blocking(16, 16, 8))


class TestPersistentDataParallel:
    def test_wave_assignment(self):
        grid = grid_with_tiles(3, 3)  # 9 tiles
        sched = persistent_data_parallel_schedule(grid, 4)
        assert sched.g == 4
        counts = [len(w.segments) for w in sched.work_items]
        assert sorted(counts) == [2, 2, 2, 3]  # 9 tiles over 4 CTAs

    def test_fewer_tiles_than_p(self):
        grid = grid_with_tiles(1, 2)
        sched = persistent_data_parallel_schedule(grid, 8)
        assert sched.g == 2

    def test_numeric(self, small_grid, small_operands):
        a, b = small_operands
        ref = reference_gemm(small_grid.problem, a, b)
        assert_schedule_correct(
            persistent_data_parallel_schedule(small_grid, 4), a, b, ref
        )


class TestTwoTileRegimes:
    def test_perfect_quantization_falls_back_to_dp(self):
        grid = grid_with_tiles(2, 4)  # 8 tiles, p=4 -> t % p == 0
        sched = two_tile_schedule(grid, 4)
        assert sched.metadata["kind"] == "data_parallel"
        assert sched.total_fixup_stores == 0
        assert sched.k_aligned_fraction == 1.0

    def test_fewer_tiles_than_p_uses_basic_stream_k(self):
        grid = grid_with_tiles(1, 3)  # 3 tiles < p=4
        sched = two_tile_schedule(grid, 4, g_small=4)
        assert sched.metadata["kind"] == "basic_stream_k"
        assert sched.g == 4

    def test_main_regime_two_tile_region(self):
        grid = grid_with_tiles(3, 7)  # 21 tiles, p=4: w=5, sk_tiles=5
        sched = two_tile_schedule(grid, 4)
        assert sched.metadata["kind"] == "two_tile"
        assert sched.metadata["sk_tiles"] == 21 - 4 * 4
        assert sched.g == 4

    def test_each_cta_between_one_and_two_tiles_in_sk_region(self):
        grid = grid_with_tiles(3, 7, ipt=8)
        sched = two_tile_schedule(grid, 4)
        ipt = grid.iters_per_tile
        w = grid.num_tiles // 4
        for item in sched.work_items:
            dp_iters = (w - 1) * ipt
            sk_iters = item.total_iters - dp_iters
            assert ipt < sk_iters < 2 * ipt

    def test_owner_has_at_most_one_peer(self):
        """The two-tile property: every fixup is a single-peer exchange."""
        grid = grid_with_tiles(5, 5, ipt=7)
        sched = two_tile_schedule(grid, 4)
        assert sched.max_peers_per_tile <= 1

    def test_dp_tiles_evenly_distributed(self):
        grid = grid_with_tiles(3, 7)
        sched = two_tile_schedule(grid, 4)
        w = grid.num_tiles // 4
        for item in sched.work_items:
            dp_segments = [
                s
                for s in item.segments
                if s.is_owner and not s.peers and s.iter_begin == 0
                and s.num_iters == grid.iters_per_tile
            ]
            # each CTA gets exactly w-1 full data-parallel tiles (its
            # fully-owned sk tiles also match this shape, hence >=)
            assert len(dp_segments) >= w - 1

    def test_invalid_p_rejected(self, small_grid):
        with pytest.raises(ConfigurationError):
            two_tile_schedule(small_grid, 0)
        with pytest.raises(ConfigurationError):
            TwoTileStreamK(-1)


class TestDpOneTileRegimes:
    def test_residual_tiles_streamk(self):
        grid = grid_with_tiles(3, 7)  # 21 tiles, p=4 -> w=5, r=1
        sched = dp_one_tile_schedule(grid, 4)
        assert sched.metadata["kind"] == "dp_one_tile"
        assert sched.metadata["sk_tiles"] == 1
        # every SK share is less than one tile's worth
        ipt = grid.iters_per_tile
        w = grid.num_tiles // 4
        for item in sched.work_items:
            sk_iters = item.total_iters - w * ipt
            assert -ipt < sk_iters < ipt

    def test_perfect_quantization_falls_back_to_dp(self):
        grid = grid_with_tiles(2, 4)
        sched = dp_one_tile_schedule(grid, 4)
        assert sched.metadata["kind"] == "data_parallel"

    def test_contributor_segment_comes_after_dp_tiles(self):
        grid = grid_with_tiles(3, 7)
        sched = dp_one_tile_schedule(grid, 4)
        for item in sched.work_items:
            roles = [s.is_owner for s in item.segments]
            if False in roles:
                assert roles.index(False) > 0  # not the first segment

    def test_invalid_p_rejected(self, small_grid):
        with pytest.raises(ConfigurationError):
            DpOneTileStreamK(0)


class TestAlignmentFractions:
    def test_two_tile_fraction_matches_region_split(self):
        grid = grid_with_tiles(3, 7)
        sched = two_tile_schedule(grid, 4)
        sk_tiles = sched.metadata["sk_tiles"]
        expect = (grid.num_tiles - sk_tiles) / grid.num_tiles
        assert sched.k_aligned_fraction == pytest.approx(expect)

    def test_dp_one_tile_more_aligned_than_two_tile(self):
        grid = grid_with_tiles(3, 7)
        one = dp_one_tile_schedule(grid, 4)
        two = two_tile_schedule(grid, 4)
        assert one.k_aligned_fraction >= two.k_aligned_fraction


class TestNumerics:
    @settings(max_examples=25, deadline=None)
    @given(
        tiles_m=st.integers(1, 8),
        tiles_n=st.integers(1, 8),
        ipt=st.integers(1, 12),
        p=st.integers(1, 10),
    )
    def test_two_tile_property(self, tiles_m, tiles_n, ipt, p):
        grid = grid_with_tiles(tiles_m, tiles_n, ipt)
        a, b = random_operands(grid.problem, 8)
        ref = reference_gemm(grid.problem, a, b)
        assert_schedule_correct(two_tile_schedule(grid, p), a, b, ref)

    @settings(max_examples=25, deadline=None)
    @given(
        tiles_m=st.integers(1, 8),
        tiles_n=st.integers(1, 8),
        ipt=st.integers(1, 12),
        p=st.integers(1, 10),
    )
    def test_dp_one_tile_property(self, tiles_m, tiles_n, ipt, p):
        grid = grid_with_tiles(tiles_m, tiles_n, ipt)
        a, b = random_operands(grid.problem, 9)
        ref = reference_gemm(grid.problem, a, b)
        assert_schedule_correct(dp_one_tile_schedule(grid, p), a, b, ref)

    def test_ragged_problem_both_hybrids(self):
        p = GemmProblem(101, 67, 43, dtype=FP64)
        grid = TileGrid(p, Blocking(16, 16, 8))
        a, b = random_operands(p, 10)
        ref = reference_gemm(p, a, b)
        assert_schedule_correct(two_tile_schedule(grid, 4), a, b, ref)
        assert_schedule_correct(dp_one_tile_schedule(grid, 4), a, b, ref)
