"""Data-parallel decomposition tests (paper Algorithm 2)."""

import numpy as np
import pytest

from repro.gemm import FP64, Blocking, GemmProblem, TileGrid, get_traversal, random_operands, reference_gemm
from repro.schedules import DataParallel, data_parallel_schedule

from tests.conftest import assert_schedule_correct


class TestStructure:
    def test_one_cta_per_tile(self, small_grid):
        sched = data_parallel_schedule(small_grid)
        assert sched.g == small_grid.num_tiles
        for w in sched.work_items:
            assert len(w.segments) == 1
            assert w.segments[0].is_owner
            assert w.segments[0].num_iters == small_grid.iters_per_tile

    def test_no_fixup_traffic(self, small_grid):
        sched = data_parallel_schedule(small_grid)
        assert sched.total_fixup_stores == 0
        assert sched.max_peers_per_tile == 0

    def test_fully_aligned(self, small_grid):
        assert data_parallel_schedule(small_grid).k_aligned_fraction == 1.0

    def test_validates(self, small_grid):
        data_parallel_schedule(small_grid).validate()

    def test_iters_per_cta_balanced_exactly(self, small_grid):
        sched = data_parallel_schedule(small_grid)
        iters = sched.iters_per_cta()
        assert (iters == small_grid.iters_per_tile).all()


class TestNumerics:
    def test_exact_result(self, small_grid, small_operands):
        a, b = small_operands
        ref = reference_gemm(small_grid.problem, a, b)
        assert_schedule_correct(data_parallel_schedule(small_grid), a, b, ref)

    def test_single_tile_problem(self):
        p = GemmProblem(8, 8, 64, dtype=FP64)
        grid = TileGrid(p, Blocking(16, 16, 8))
        a, b = random_operands(p, 0)
        ref = reference_gemm(p, a, b)
        assert_schedule_correct(data_parallel_schedule(grid), a, b, ref)


class TestTraversal:
    def test_morton_traversal_reorders_but_stays_exact(self, small_grid, small_operands):
        a, b = small_operands
        tr = get_traversal("morton", small_grid.tiles_m, small_grid.tiles_n)
        sched = data_parallel_schedule(small_grid, tr)
        ref = reference_gemm(small_grid.problem, a, b)
        assert_schedule_correct(sched, a, b, ref)
        # CTA 0 under Morton still produces tile 0 (Z-order starts there),
        # but later launch positions differ from row-major.
        produced = [w.segments[0].tile_idx for w in sched.work_items]
        assert sorted(produced) == list(range(small_grid.num_tiles))
        assert produced != list(range(small_grid.num_tiles))

    def test_factory(self, small_grid):
        sched = DataParallel().build(small_grid)
        assert sched.name == "data_parallel"
        assert sched.metadata["traversal"] == "row_major"
