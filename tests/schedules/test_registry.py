"""Decomposition registry tests."""

import pytest

from repro.errors import ConfigurationError
from repro.schedules import DECOMPOSITION_NAMES, make_decomposition


class TestRegistry:
    def test_all_names_constructible(self, small_grid):
        kwargs = {
            "data_parallel": {},
            "fixed_split": {"s": 2},
            "stream_k": {"g": 4},
            "two_tile_stream_k": {"p": 4},
            "dp_one_tile_stream_k": {"p": 4},
        }
        for name in DECOMPOSITION_NAMES:
            decomp = make_decomposition(name, **kwargs[name])
            sched = decomp.build(small_grid)
            sched.validate()

    def test_unknown_name(self):
        with pytest.raises(ConfigurationError, match="unknown decomposition"):
            make_decomposition("pencil_split")

    def test_kwargs_forwarded(self, small_grid):
        decomp = make_decomposition("fixed_split", s=3)
        assert decomp.build(small_grid).metadata["s"] == 3
