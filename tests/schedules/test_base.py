"""Schedule validation tests: the coverage prover must catch bad schedules."""

import pytest

from repro.errors import ConfigurationError
from repro.gemm import FP64, Blocking, GemmProblem, TileGrid
from repro.schedules import CtaWorkItem, Schedule, SegmentRole, TileSegment


@pytest.fixture
def tiny_grid():
    # 2 tiles, 3 iterations per tile.
    return TileGrid(GemmProblem(16, 32, 24, dtype=FP64), Blocking(16, 16, 8))


def owner(tile, begin, end, peers=()):
    return TileSegment(tile, begin, end, SegmentRole.OWNER, tuple(peers))


def contrib(tile, begin, end):
    return TileSegment(tile, begin, end, SegmentRole.CONTRIBUTOR)


def schedule(grid, items):
    return Schedule(name="test", grid=grid, work_items=tuple(items))


class TestValidate:
    def test_good_split_schedule_passes(self, tiny_grid):
        items = [
            CtaWorkItem(0, (owner(0, 0, 2, peers=(1,)),)),
            CtaWorkItem(1, (contrib(0, 2, 3), owner(1, 0, 3))),
        ]
        schedule(tiny_grid, items).validate()

    def test_gap_detected(self, tiny_grid):
        items = [
            CtaWorkItem(0, (owner(0, 0, 1, peers=(1,)),)),
            CtaWorkItem(1, (contrib(0, 2, 3), owner(1, 0, 3))),
        ]
        with pytest.raises(ConfigurationError, match="gap"):
            schedule(tiny_grid, items).validate()

    def test_overlap_detected(self, tiny_grid):
        items = [
            CtaWorkItem(0, (owner(0, 0, 3, peers=(1,)),)),
            CtaWorkItem(1, (contrib(0, 2, 3), owner(1, 0, 3))),
        ]
        with pytest.raises(ConfigurationError):
            schedule(tiny_grid, items).validate()

    def test_missing_tile_detected(self, tiny_grid):
        items = [CtaWorkItem(0, (owner(0, 0, 3),))]
        with pytest.raises(ConfigurationError, match="no coverage"):
            schedule(tiny_grid, items).validate()

    def test_incomplete_tile_detected(self, tiny_grid):
        items = [
            CtaWorkItem(0, (owner(0, 0, 2),)),
            CtaWorkItem(1, (owner(1, 0, 3),)),
        ]
        with pytest.raises(ConfigurationError, match="stops at"):
            schedule(tiny_grid, items).validate()

    def test_two_owners_detected(self, tiny_grid):
        # tile 1 covered twice by owners via overlapping full ranges.
        items = [
            CtaWorkItem(0, (owner(0, 0, 3),)),
            CtaWorkItem(1, (owner(1, 0, 3),)),
            CtaWorkItem(2, (owner(1, 0, 3),)),
        ]
        with pytest.raises(ConfigurationError):
            schedule(tiny_grid, items).validate()

    def test_wrong_peer_list_detected(self, tiny_grid):
        items = [
            CtaWorkItem(0, (owner(0, 0, 2, peers=()),)),  # missing peer 1
            CtaWorkItem(1, (contrib(0, 2, 3), owner(1, 0, 3))),
        ]
        with pytest.raises(ConfigurationError, match="peers"):
            schedule(tiny_grid, items).validate()

    def test_tile_index_out_of_grid_detected(self, tiny_grid):
        items = [
            CtaWorkItem(0, (owner(0, 0, 3),)),
            CtaWorkItem(1, (owner(1, 0, 3),)),
            CtaWorkItem(2, (owner(5, 0, 3),)),
        ]
        with pytest.raises(ConfigurationError, match="beyond grid"):
            schedule(tiny_grid, items).validate()

    def test_segment_past_k_detected(self, tiny_grid):
        items = [
            CtaWorkItem(0, (owner(0, 0, 4),)),
            CtaWorkItem(1, (owner(1, 0, 3),)),
        ]
        with pytest.raises(ConfigurationError, match="ends at iteration"):
            schedule(tiny_grid, items).validate()


class TestStructureQueries:
    def test_owner_and_contributors(self, tiny_grid):
        items = [
            CtaWorkItem(0, (owner(0, 0, 2, peers=(1,)),)),
            CtaWorkItem(1, (contrib(0, 2, 3), owner(1, 0, 3))),
        ]
        sched = schedule(tiny_grid, items)
        assert sched.tile_owner(0) == 0
        assert sched.tile_owner(1) == 1
        assert sched.contributors(0) == [1]
        assert sched.contributors(1) == []

    def test_missing_owner_raises(self, tiny_grid):
        sched = schedule(tiny_grid, [CtaWorkItem(0, (owner(0, 0, 3),))])
        with pytest.raises(ConfigurationError, match="no owner"):
            sched.tile_owner(1)

    def test_aggregates(self, tiny_grid):
        items = [
            CtaWorkItem(0, (owner(0, 0, 2, peers=(1,)),)),
            CtaWorkItem(1, (contrib(0, 2, 3), owner(1, 0, 3))),
        ]
        sched = schedule(tiny_grid, items)
        assert sched.g == 2
        assert sched.max_iters_per_cta == 4
        assert sched.min_iters_per_cta == 2
        assert sched.total_fixup_stores == 1
        assert sched.max_peers_per_tile == 1
