"""Basic Stream-K decomposition tests (paper Algorithm 5)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.gemm import FP64, Blocking, GemmProblem, TileGrid, random_operands, reference_gemm
from repro.schedules import StreamK, partition_region, stream_k_schedule

from tests.conftest import assert_schedule_correct


class TestWorkBalance:
    @pytest.mark.parametrize("g", [1, 2, 3, 4, 7, 13, 35])
    def test_even_share_within_one(self, small_grid, g):
        """The paper's headline property: iteration shares differ by <= 1."""
        sched = stream_k_schedule(small_grid, g)
        iters = sched.iters_per_cta()
        assert iters.sum() == small_grid.total_iters
        assert iters.max() - iters.min() <= 1

    def test_grid_clamped_to_total_iters(self, small_grid):
        sched = stream_k_schedule(small_grid, small_grid.total_iters + 50)
        assert sched.g == small_grid.total_iters
        assert sched.metadata["g_requested"] == small_grid.total_iters + 50
        assert sched.min_iters_per_cta == 1

    def test_contiguous_ranges_cross_tile_boundaries(self, small_grid):
        sched = stream_k_schedule(small_grid, 4)
        multi_tile = [w for w in sched.work_items if len(w.segments) > 1]
        assert multi_tile, "a 4-CTA grid over 35 tiles must span tiles"


class TestGeneralization:
    """Section 4: Stream-K generalizes data-parallel and fixed-split."""

    def test_g_equals_tiles_behaves_data_parallel(self):
        grid = TileGrid(GemmProblem(64, 64, 40, dtype=FP64), Blocking(16, 16, 8))
        sched = stream_k_schedule(grid, grid.num_tiles)
        assert sched.total_fixup_stores == 0
        assert sched.k_aligned_fraction == 1.0
        for w in sched.work_items:
            assert len(w.segments) == 1 and w.segments[0].is_owner

    def test_g_multiple_of_tiles_behaves_fixed_split(self):
        grid = TileGrid(GemmProblem(32, 32, 64, dtype=FP64), Blocking(16, 16, 8))
        s = 2
        sched = stream_k_schedule(grid, grid.num_tiles * s)
        # every tile is covered by exactly s CTAs with uniform sub-ranges
        for tile in range(grid.num_tiles):
            assert len(sched.contributors(tile)) == s - 1

    def test_g_divides_tiles_aligned_multi_tile(self):
        grid = TileGrid(GemmProblem(64, 64, 40, dtype=FP64), Blocking(16, 16, 8))
        sched = stream_k_schedule(grid, grid.num_tiles // 2)
        assert sched.total_fixup_stores == 0
        assert sched.k_aligned_fraction == 1.0


class TestOwnership:
    def test_owner_performed_k0_iteration(self, small_grid):
        sched = stream_k_schedule(small_grid, 9)
        for w in sched.work_items:
            for seg in w.segments:
                if seg.is_owner:
                    assert seg.iter_begin == 0

    def test_peers_are_later_ctas_in_k_order(self, small_grid):
        sched = stream_k_schedule(small_grid, 9)
        for w in sched.work_items:
            for seg in w.segments:
                if seg.is_owner and seg.peers:
                    assert list(seg.peers) == sorted(seg.peers)
                    assert min(seg.peers) > w.cta

    def test_validates(self, small_grid):
        for g in (1, 5, 11, 35, 100):
            stream_k_schedule(small_grid, g).validate()


class TestPartitionRegion:
    def test_region_offset(self, small_grid):
        per_cta = partition_region(small_grid, 3, first_tile_pos=2, num_region_tiles=4)
        tiles = {s.tile_idx for segs in per_cta for s in segs}
        assert tiles == {2, 3, 4, 5}

    def test_bad_region_rejected(self, small_grid):
        with pytest.raises(ConfigurationError):
            partition_region(small_grid, 3, 0, small_grid.num_tiles + 1)
        with pytest.raises(ConfigurationError):
            partition_region(small_grid, 0, 0, 2)
        with pytest.raises(ConfigurationError):
            partition_region(small_grid, 10**9, 0, 2)


class TestNumerics:
    @pytest.mark.parametrize("g", [1, 2, 3, 5, 8, 13, 34, 35, 70, 245])
    def test_exact_for_any_grid(self, small_grid, small_operands, g):
        a, b = small_operands
        ref = reference_gemm(small_grid.problem, a, b)
        out = stream_k_schedule(small_grid, g).execute(a, b)
        assert np.allclose(out, ref, rtol=1e-12, atol=1e-12)

    @settings(max_examples=30, deadline=None)
    @given(
        m=st.integers(1, 60),
        n=st.integers(1, 60),
        k=st.integers(1, 80),
        g=st.integers(1, 40),
    )
    def test_property_random_shapes_and_grids(self, m, n, k, g):
        p = GemmProblem(m, n, k, dtype=FP64)
        grid = TileGrid(p, Blocking(16, 16, 8))
        a, b = random_operands(p, 5)
        ref = reference_gemm(p, a, b)
        assert_schedule_correct(stream_k_schedule(grid, g), a, b, ref)

    def test_invalid_g_rejected(self, small_grid):
        with pytest.raises(ConfigurationError):
            stream_k_schedule(small_grid, 0)
        with pytest.raises(ConfigurationError):
            StreamK(-3)
