"""Property-based conformance suite: every schedule, any hardware.

PR 3 proved the execution protocol's invariants on the paper's A100.
This suite proves them *per spec*: Hypothesis draws random
``(m, n, k, dtype, GpuSpec)`` points — registered presets and freshly
generated custom devices alike — and asserts, for every registered
decomposition, that

* the executed trace passes :func:`check_protocol_invariants` (the
  fault-checker oracle: exact-once k-space coverage, prescribed segment
  sequences, no fixup before publication, exactly-once accumulation);
* the makespan is finite, positive, and >= the work lower bound
  ``total_iters * cycles_per_iter / total_cta_slots``;
* Stream-K's per-CTA iteration spread is <= 1 — the quantization-free
  placement the paper claims is structural, on every SM count.

Plus registry round-trip properties: any valid random spec survives
``to_json -> from_json`` exactly.
"""

import math

import pytest
from hypothesis import given, strategies as st

from repro.faults.checker import check_protocol_invariants
from repro.faults.sweep import build_registered_schedule
from repro.gemm.dtypes import DTYPE_CONFIGS, get_dtype_config
from repro.gemm.problem import GemmProblem
from repro.gemm.tiling import Blocking, TileGrid
from repro.gpu.costmodel import KernelCostModel
from repro.gpu.executor import Executor
from repro.gpu.spec import GPU_PRESETS, GpuSpec
from repro.schedules.registry import DECOMPOSITION_NAMES

# Bounds keep one example's discrete-event execution cheap (at most a few
# hundred CTAs) while still crossing every scheduling regime: fewer tiles
# than SMs, perfect quantization, skewed partial waves.
_MAX_MN = 384
_MAX_K = 512

_PRESET_NAMES = sorted(GPU_PRESETS)


@st.composite
def gpu_specs(draw) -> GpuSpec:
    """A registered preset or a random custom device within valid bounds."""
    if draw(st.booleans()):
        return GPU_PRESETS[draw(st.sampled_from(_PRESET_NAMES))]
    num_sms = draw(st.integers(min_value=1, max_value=16))
    sm_bw = draw(st.sampled_from([10e9, 30e9, 45e9]))
    return GpuSpec(
        name="prop_%dsm" % num_sms,
        num_sms=num_sms,
        clock_hz=float(draw(st.sampled_from([0.5e9, 1.005e9, 1.755e9]))),
        macs_per_sm_per_cycle={
            "fp64": draw(st.sampled_from([2, 32, 64, 128])),
            "fp16_fp32": draw(st.sampled_from([256, 512, 1024, 2048])),
            "fp32": draw(st.sampled_from([64, 128, 512])),
            "bf16_fp32": draw(st.sampled_from([256, 1024, 2048])),
        },
        dram_bandwidth=float(
            num_sms * sm_bw + draw(st.sampled_from([1e11, 5e11, 1.555e12]))
        ),
        l2_bytes=draw(st.sampled_from([4, 6, 40, 50])) * 1024 * 1024,
        occupancy=draw(st.integers(min_value=1, max_value=2)),
        sm_max_bandwidth=sm_bw,
    )


@st.composite
def cases(draw):
    """One conformance case: (problem, dtype, spec) within valid bounds."""
    spec = draw(gpu_specs())
    dtype_name = draw(
        st.sampled_from(
            sorted(set(DTYPE_CONFIGS) & set(spec.macs_per_sm_per_cycle))
        )
    )
    dtype = get_dtype_config(dtype_name)
    m = draw(st.integers(min_value=1, max_value=_MAX_MN))
    n = draw(st.integers(min_value=1, max_value=_MAX_MN))
    k = draw(st.integers(min_value=1, max_value=_MAX_K))
    return GemmProblem(m, n, k, dtype=dtype), dtype, spec


def _execute(name, problem, dtype, spec):
    blocking = Blocking(*dtype.default_blocking)
    grid = TileGrid(problem, blocking)
    schedule = build_registered_schedule(name, grid, spec)
    cost = KernelCostModel(gpu=spec, blocking=blocking, dtype=dtype)
    tasks = cost.build_tasks(schedule)
    trace = Executor(spec.total_cta_slots, backend="python").run(tasks)
    # The vectorized backend must reproduce the oracle bitwise on every
    # drawn (shape, dtype, spec) point; the invariant checks downstream
    # then run against the fast backend's trace, not the oracle's.
    fast = Executor(spec.total_cta_slots, backend="numpy").run_arrays(
        cost.build_task_arrays(schedule)
    )
    assert fast.makespan == trace.makespan
    assert fast.ctas == trace.ctas
    return schedule, grid, cost, fast


class TestScheduleConformance:
    @pytest.mark.parametrize("name", DECOMPOSITION_NAMES)
    @given(case=cases())
    def test_invariants_and_makespan_bound(self, name, case):
        problem, dtype, spec = case
        schedule, grid, cost, trace = _execute(name, problem, dtype, spec)

        # The fault-checker oracle proves the protocol per (shape, spec).
        report = check_protocol_invariants(schedule, trace)
        assert report.num_tiles == grid.num_tiles

        # Work conservation: no schedule beats the iteration lower bound.
        lower = cost.cycles_per_iter * grid.total_iters / spec.total_cta_slots
        assert math.isfinite(trace.makespan)
        assert trace.makespan > 0.0
        assert trace.makespan >= lower

    @given(case=cases())
    def test_stream_k_iteration_spread_at_most_one(self, case):
        # The structural claim: Stream-K's even iteration split leaves a
        # per-CTA spread of at most one MAC-loop iteration on any device.
        problem, dtype, spec = case
        blocking = Blocking(*dtype.default_blocking)
        grid = TileGrid(problem, blocking)
        schedule = build_registered_schedule("stream_k", grid, spec)
        iters = [w.total_iters for w in schedule.work_items]
        assert max(iters) - min(iters) <= 1
        assert sum(iters) == grid.total_iters


class TestSpecRoundTripProperty:
    @given(spec=gpu_specs())
    def test_to_json_from_json_identity(self, spec):
        assert GpuSpec.from_json(spec.to_json()) == spec

    @given(spec=gpu_specs())
    def test_peaks_positive_for_every_supported_dtype(self, spec):
        for name in spec.macs_per_sm_per_cycle:
            dtype = get_dtype_config(name)
            assert spec.supports_dtype(dtype)
            assert spec.peak_tflops(dtype) > 0.0
