"""Hypothesis profiles for the property-based conformance suite.

Two profiles, selected via ``HYPOTHESIS_PROFILE`` (default ``dev``):

* ``dev`` — 25 examples per property, for the everyday tier-1 run;
* ``ci``  — 200 examples per property with a pinned (derandomized) seed,
  the acceptance bar (>= 200 generated (shape, spec) cases per
  registered schedule; run with ``--hypothesis-show-statistics`` in the
  ``properties`` CI job).

Both profiles are derandomized so the suite is reproducible: a failing
example fails everywhere, not just on one runner's RNG draw.  Deadlines
are disabled because one example is a full discrete-event execution plus
an invariant-checker replay — wall time scales with the drawn (shape,
spec) point, which is exactly what deadlines mis-flag.
"""

import os

from hypothesis import HealthCheck, settings

settings.register_profile(
    "dev",
    max_examples=25,
    derandomize=True,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile(
    "ci",
    max_examples=200,
    derandomize=True,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))
