"""Property-based suite for the counting Bloom filter (Stream-K++).

The adaptive selector's correctness argument leans on three filter
properties, so Hypothesis pins each directly on
:class:`repro.plan.filtercache.CountingBloomFilter`:

* **No false negatives** — any inserted, un-deleted key queries ``True``,
  for every drawn (geometry, key set), including adversarially tiny
  filters where every counter saturates.
* **Delete restores** — deleting a key that was inserted on top of an
  arbitrary pre-population restores the *exact* pre-insert query results
  for every key observed, as long as no counter saturated (saturation
  deliberately freezes counters; the filter reports it, and the
  membership keys that remain inserted still never go false-negative).
* **Bounded false positives** — the rate measured on a disjoint probe
  set stays within sampling slack of the analytic occupancy bound
  ``(1 - e^{-k n / m})^k`` for the configured geometry.

Profiles come from ``tests/properties/conftest.py``: derandomized
``dev`` (25 examples) / ``ci`` (200 examples) via ``HYPOTHESIS_PROFILE``.
"""

import math

from hypothesis import assume, given, strategies as st

from repro.plan.filtercache import (
    BloomParams,
    CountingBloomFilter,
    analytic_fp_rate,
    shape_key,
)

# Key material: arbitrary small byte strings exercise the hash paths the
# same way real shape keys do (shape_key output is just bytes).
_keys = st.binary(min_size=1, max_size=24)
_key_sets = st.sets(_keys, min_size=1, max_size=64)


@st.composite
def filter_params(draw, min_bits=1, max_bits=4096) -> BloomParams:
    """A random valid geometry, biased toward small, collision-heavy
    filters — the regime where counting mistakes would actually show."""
    return BloomParams(
        bits=draw(st.integers(min_value=min_bits, max_value=max_bits)),
        num_hashes=draw(st.integers(min_value=1, max_value=8)),
        counter_bits=draw(st.integers(min_value=1, max_value=8)),
        seed=draw(st.integers(min_value=0, max_value=2**32 - 1)),
    )


class TestNoFalseNegatives:
    @given(params=filter_params(), keys=_key_sets)
    def test_inserted_keys_always_query_true(self, params, keys):
        f = CountingBloomFilter(params)
        for key in keys:
            f.insert(key)
        for key in keys:
            assert f.query(key), (
                "false negative for an inserted key (params=%r)" % (params,)
            )

    @given(
        params=filter_params(max_bits=8),
        keys=st.sets(_keys, min_size=16, max_size=64),
    )
    def test_no_false_negatives_even_fully_saturated(self, params, keys):
        # Tiny filter, many keys: counters are guaranteed to hit the
        # ceiling.  Saturation must never manufacture a false negative.
        f = CountingBloomFilter(params)
        for key in keys:
            f.insert(key)
        for key in keys:
            assert f.query(key)

    @given(params=filter_params(), keys=_key_sets)
    def test_deleting_other_keys_never_removes_membership(self, params, keys):
        keys = sorted(keys)
        kept, dropped = keys[: len(keys) // 2 + 1], keys[len(keys) // 2 + 1:]
        f = CountingBloomFilter(params)
        for key in keys:
            f.insert(key)
        assume(f.saturations == 0)
        for key in dropped:
            f.delete(key)
        for key in kept:
            assert f.query(key), "delete of a different key broke membership"


class TestDeleteRestores:
    @given(
        params=filter_params(),
        background=st.sets(_keys, max_size=32),
        probe=_keys,
    )
    def test_delete_restores_pre_insert_query_results(
        self, params, background, probe
    ):
        f = CountingBloomFilter(params)
        for key in background:
            f.insert(key)
        assume(f.saturations == 0)
        observed = sorted(background | {probe})
        before = [f.query(key) for key in observed]
        f.insert(probe)
        assert f.query(probe)
        f.delete(probe)
        assume(f.saturations == 0)
        assert [f.query(key) for key in observed] == before, (
            "insert+delete was not a no-op for observed queries"
        )

    @given(params=filter_params(), keys=_key_sets)
    def test_full_teardown_restores_empty_filter(self, params, keys):
        f = CountingBloomFilter(params)
        for key in keys:
            f.insert(key)
        assume(f.saturations == 0)
        for key in keys:
            f.delete(key)
        for key in keys:
            assert not f.query(key)
        assert len(f) == 0


class TestFalsePositiveBound:
    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        num_hashes=st.integers(min_value=2, max_value=6),
    )
    def test_measured_fp_rate_within_analytic_bound(self, seed, num_hashes):
        # Fixed, deliberately loaded geometry: 1024 slots, 96 keys.  The
        # probe set is disjoint by construction (distinct key prefixes).
        params = BloomParams(bits=1024, num_hashes=num_hashes, seed=seed)
        f = CountingBloomFilter(params)
        inserted = [shape_key(m, m + 1, m + 2, "fp16_fp32", "ins") for m in range(1, 97)]
        for key in inserted:
            f.insert(key)
        probes = [
            shape_key(m, m + 1, m + 2, "fp16_fp32", "probe")
            for m in range(1, 2001)
        ]
        measured = f.measured_fp_rate(probes)
        bound = analytic_fp_rate(params.bits, params.num_hashes, len(inserted))
        # Within 2x of the bound plus three-sigma binomial sampling slack
        # (the acceptance criterion's "within 2x of the analytic bound").
        slack = 3.0 * math.sqrt(bound * (1.0 - bound) / len(probes))
        assert measured <= 2.0 * bound + slack, (
            "measured FP %.4g exceeds 2x analytic bound %.4g (+%.4g slack)"
            % (measured, bound, slack)
        )

    @given(params=filter_params())
    def test_empty_filter_has_zero_fp_rate(self, params):
        f = CountingBloomFilter(params)
        probes = [shape_key(m, 2, 3, "fp32", "fp") for m in range(1, 201)]
        assert f.measured_fp_rate(probes) == 0.0
        assert f.analytic_fp_rate() == 0.0


class TestDeterminismAndDegenerate:
    @given(params=filter_params(), keys=_key_sets)
    def test_same_seed_same_filter_state(self, params, keys):
        f1, f2 = CountingBloomFilter(params), CountingBloomFilter(params)
        for key in sorted(keys):
            f1.insert(key)
            f2.insert(key)
        assert (f1._counters == f2._counters).all()

    @given(seed=st.integers(min_value=0, max_value=2**32 - 1), keys=_key_sets)
    def test_zero_capacity_filter_always_misses(self, seed, keys):
        f = CountingBloomFilter(BloomParams(bits=0, seed=seed))
        for key in keys:
            f.insert(key)
            assert not f.query(key)
        assert f.memory_bytes == 0
