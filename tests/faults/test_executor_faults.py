"""Fault injection through the executor: reproducibility, inertness, effects.

The anchor artifact is the Figure 2(b) schedule (384x384x128 Stream-K
g=4 on the 4-SM GPU) whose pristine trace is committed at
``docs/traces/fig2_stream_k_g4.json`` — the zero-fault injector must
reproduce it bitwise.
"""

import dataclasses
import json
import os

import pytest

from repro.errors import DeadlockError
from repro.faults import FaultConfig, FaultInjector
from repro.gemm import FP16_FP32, Blocking, GemmProblem, TileGrid
from repro.gpu import HYPOTHETICAL_4SM, simulate_kernel
from repro.obs.export import trace_to_chrome
from repro.schedules.stream_k import stream_k_schedule

COMMITTED = os.path.join(
    os.path.dirname(__file__), "..", "..", "docs", "traces",
    "fig2_stream_k_g4.json",
)


@pytest.fixture(scope="module")
def fig2_schedule():
    problem = GemmProblem(384, 384, 128, dtype=FP16_FP32)
    grid = TileGrid(problem, Blocking(128, 128, 32))
    return stream_k_schedule(grid, 4)


def run(schedule, faults=None, check=False):
    return simulate_kernel(
        schedule, HYPOTHETICAL_4SM, faults=faults, check_invariants=check
    )


class TestZeroFaultInertness:
    def test_null_config_bitwise_matches_pristine(self, fig2_schedule):
        pristine = run(fig2_schedule).trace
        nulled = run(fig2_schedule, faults=FaultConfig.none()).trace
        assert (
            trace_to_chrome(nulled)["traceEvents"]
            == trace_to_chrome(pristine)["traceEvents"]
        )
        assert nulled.makespan == pristine.makespan

    def test_null_config_matches_committed_golden_trace(self, fig2_schedule):
        with open(COMMITTED) as fh:
            committed = json.load(fh)
        fresh = trace_to_chrome(run(fig2_schedule, faults=FaultConfig.none()).trace)
        assert fresh["traceEvents"] == committed["traceEvents"]


class TestReproducibility:
    CFG = FaultConfig(
        seed=3,
        straggler_prob=0.5,
        straggler_severity=1.0,
        clock_skew=0.1,
        mem_jitter=0.2,
        signal_delay_prob=0.5,
        signal_delay_cycles=500.0,
        preempt_prob=0.2,
        preempt_penalty_cycles=100.0,
    )

    def test_same_seed_same_trace_bitwise(self, fig2_schedule):
        a = run(fig2_schedule, faults=self.CFG).trace
        b = run(fig2_schedule, faults=self.CFG).trace
        assert (
            trace_to_chrome(a)["traceEvents"] == trace_to_chrome(b)["traceEvents"]
        )
        assert a.makespan == b.makespan

    def test_different_seed_different_trace(self, fig2_schedule):
        a = run(fig2_schedule, faults=self.CFG).trace
        b = run(fig2_schedule, faults=self.CFG.with_seed(4)).trace
        # Clock skew is continuous per slot, so any seed change moves it.
        assert a.makespan != b.makespan

    def test_shared_injector_accumulates_one_log(self, fig2_schedule):
        inj = FaultInjector(self.CFG)
        run(fig2_schedule, faults=inj)
        n = len(inj.log)
        assert n > 0
        run(fig2_schedule, faults=inj)  # memoized: same sites, no new entries
        assert len(inj.log) == n


class TestFaultEffects:
    def test_stragglers_degrade_makespan(self, fig2_schedule):
        baseline = run(fig2_schedule).trace.makespan
        cfg = FaultConfig(straggler_prob=1.0, straggler_severity=1.0)
        slowed = run(fig2_schedule, faults=cfg, check=True).trace.makespan
        assert slowed == pytest.approx(2.0 * baseline)

    def test_signal_delay_stalls_owners(self, fig2_schedule):
        baseline = run(fig2_schedule).trace.makespan
        cfg = FaultConfig(signal_delay_prob=1.0, signal_delay_cycles=5000.0)
        delayed = run(fig2_schedule, faults=cfg, check=True).trace.makespan
        assert delayed > baseline

    def test_preempt_penalty_charged(self, fig2_schedule):
        baseline = run(fig2_schedule).trace.makespan
        cfg = FaultConfig(preempt_prob=1.0, preempt_penalty_cycles=10000.0)
        preempted = run(fig2_schedule, faults=cfg, check=True).trace.makespan
        assert preempted > baseline + 10000.0

    def test_mem_jitter_prices_into_tasks(self, fig2_schedule):
        baseline = run(fig2_schedule).trace.makespan
        cfg = FaultConfig(mem_jitter=1.0)
        jittered = run(fig2_schedule, faults=cfg, check=True).trace
        assert jittered.makespan > baseline

    def test_invariants_hold_under_combined_faults(self, fig2_schedule):
        # Faults reorder time, never the carry protocol: the checker must
        # accept every completing faulted run.
        run(fig2_schedule, faults=TestReproducibility.CFG, check=True)


class TestDroppedSignals:
    def test_dropped_signal_is_clean_deadlock(self, fig2_schedule):
        cfg = FaultConfig(signal_drop_prob=1.0)
        with pytest.raises(DeadlockError) as exc:
            run(fig2_schedule, faults=cfg)
        err = exc.value
        assert err.blocked  # the stalled owner CTAs are named
        assert err.wait_chain
        for cta, slot, reason in err.wait_chain:
            assert "dropped by fault injection" in reason
        assert "dropped by fault injection" in str(err)

    def test_partial_drop_names_only_lost_producer(self, fig2_schedule):
        # Find a seed where some (not all) signals drop, then check the
        # diagnostic names exactly the dropped producers' waiters.
        for seed in range(64):
            cfg = FaultConfig(seed=seed, signal_drop_prob=0.5)
            inj = FaultInjector(cfg)
            try:
                run(fig2_schedule, faults=inj)
            except DeadlockError as err:
                dropped = inj.dropped_signals
                assert dropped
                waited_on = {slot for _, slot, _ in err.wait_chain}
                assert waited_on <= dropped
                return
        pytest.skip("no seed in range dropped a waited-on signal")
