"""FaultConfig: validation, null detection, sweep-point construction."""

import pytest

from repro.errors import ConfigurationError
from repro.faults import FaultConfig


class TestValidation:
    def test_default_is_null(self):
        cfg = FaultConfig()
        assert cfg.is_null
        assert cfg == FaultConfig.none()

    @pytest.mark.parametrize(
        "field", ["straggler_prob", "signal_delay_prob", "signal_drop_prob",
                  "preempt_prob"]
    )
    def test_probabilities_bounded(self, field):
        with pytest.raises(ConfigurationError):
            FaultConfig(**{field: 1.5})
        with pytest.raises(ConfigurationError):
            FaultConfig(**{field: -0.1})

    @pytest.mark.parametrize(
        "field", ["straggler_severity", "clock_skew", "mem_jitter",
                  "signal_delay_cycles", "preempt_penalty_cycles"]
    )
    def test_magnitudes_non_negative(self, field):
        with pytest.raises(ConfigurationError):
            FaultConfig(**{field: -1.0})

    def test_negative_seed_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultConfig(seed=-1)


class TestNullness:
    def test_prob_without_severity_is_null(self):
        # straggler_prob alone cannot fire a slowdown.
        assert FaultConfig(straggler_prob=1.0).is_null
        assert FaultConfig(signal_delay_prob=1.0).is_null

    def test_each_dimension_breaks_nullness(self):
        assert not FaultConfig(
            straggler_prob=0.5, straggler_severity=1.0
        ).is_null
        assert not FaultConfig(clock_skew=0.1).is_null
        assert not FaultConfig(mem_jitter=0.1).is_null
        assert not FaultConfig(
            signal_delay_prob=0.5, signal_delay_cycles=100.0
        ).is_null
        assert not FaultConfig(signal_drop_prob=0.01).is_null
        assert not FaultConfig(preempt_prob=0.01).is_null


class TestSweepPoint:
    def test_zero_severity_is_exactly_none(self):
        assert FaultConfig.straggler_sweep_point(0.0, seed=9) == FaultConfig.none(seed=9)

    def test_severity_scales_dimensions(self):
        lo = FaultConfig.straggler_sweep_point(0.5, seed=1)
        hi = FaultConfig.straggler_sweep_point(2.0, seed=1)
        assert hi.straggler_severity > lo.straggler_severity
        assert hi.mem_jitter > lo.mem_jitter
        assert hi.signal_delay_cycles > lo.signal_delay_cycles
        assert not lo.is_null and not hi.is_null

    def test_with_seed_changes_only_seed(self):
        cfg = FaultConfig.straggler_sweep_point(1.0, seed=1)
        other = cfg.with_seed(2)
        assert other.seed == 2
        assert other.with_seed(1) == cfg
