"""Protocol invariant checker: accepts legal runs, catches broken ones.

Structural breaches use duck-typed schedule fixtures (gaps, overlaps,
missing owners); temporal breaches tamper a legally-executed trace and
assert the race detector names the violation.
"""

import dataclasses
from types import SimpleNamespace

import pytest

from repro.errors import ProtocolViolation
from repro.faults import FaultConfig, check_protocol_invariants
from repro.faults.checker import InvariantReport
from repro.gemm import FP16_FP32, Blocking, GemmProblem, TileGrid
from repro.gpu import (
    HYPOTHETICAL_4SM,
    CtaTask,
    ExecutionTrace,
    SegmentKind,
    TimedSegment,
    execute_tasks,
    simulate_kernel,
)
from repro.schedules.registry import DECOMPOSITION_NAMES
from repro.schedules.workitem import CtaWorkItem, SegmentRole, TileSegment
from repro.faults.sweep import build_registered_schedule

OWNER = SegmentRole.OWNER
CONTRIB = SegmentRole.CONTRIBUTOR

DUMMY_TRACE = ExecutionTrace(num_sm_slots=1)


def fake_schedule(work_items, iters_per_tile=8, num_tiles=1):
    """Duck-typed stand-in: just the attributes the checker reads."""
    return SimpleNamespace(
        grid=SimpleNamespace(iters_per_tile=iters_per_tile, num_tiles=num_tiles),
        work_items=list(work_items),
    )


def owner_item(cta, tile=0, end=4, peers=()):
    return CtaWorkItem(
        cta=cta, segments=(TileSegment(tile, 0, end, OWNER, tuple(peers)),)
    )


def contrib_item(cta, tile=0, begin=4, end=8):
    return CtaWorkItem(
        cta=cta, segments=(TileSegment(tile, begin, end, CONTRIB),)
    )


# --------------------------------------------------------------------- #
# A minimal legal (schedule, trace) pair for tampering                    #
# --------------------------------------------------------------------- #


def legal_pair():
    """One owner (CTA 0) accumulating one contributor (CTA 1)."""
    schedule = fake_schedule(
        [owner_item(0, peers=(1,)), contrib_item(1)]
    )
    tasks = [
        CtaTask(
            cta=0,
            segments=(
                TimedSegment(SegmentKind.PROLOGUE, 1.0),
                TimedSegment(SegmentKind.COMPUTE, 4.0),
                TimedSegment(SegmentKind.WAIT, 0.0, 1),
                TimedSegment(SegmentKind.FIXUP, 2.0, 1),
                TimedSegment(SegmentKind.STORE_TILE, 1.0),
            ),
        ),
        CtaTask(
            cta=1,
            segments=(
                TimedSegment(SegmentKind.PROLOGUE, 1.0),
                TimedSegment(SegmentKind.COMPUTE, 6.0),
                TimedSegment(SegmentKind.STORE_PARTIALS, 1.0),
                TimedSegment(SegmentKind.SIGNAL, 0.0, 1),
            ),
        ),
    ]
    return schedule, execute_tasks(tasks, 2)


def tamper(trace, cta, index=None, segment=None, drop_index=None, **rec_changes):
    """Rebuild ``trace`` with one CTA's record altered."""
    ctas = []
    for rec in trace.ctas:
        if rec.cta == cta:
            segs = list(rec.segments)
            if drop_index is not None:
                del segs[drop_index]
            if index is not None:
                segs[index] = dataclasses.replace(segs[index], **segment)
            rec = dataclasses.replace(rec, segments=tuple(segs), **rec_changes)
        ctas.append(rec)
    return ExecutionTrace(num_sm_slots=trace.num_sm_slots, ctas=ctas)


# --------------------------------------------------------------------- #
# Acceptance: every registered schedule, faulted or not                   #
# --------------------------------------------------------------------- #


class TestAcceptsLegalRuns:
    @pytest.mark.parametrize("name", DECOMPOSITION_NAMES)
    def test_registered_schedules_pass(self, name):
        problem = GemmProblem(384, 384, 128, dtype=FP16_FP32)
        grid = TileGrid(problem, Blocking(128, 128, 32))
        schedule = build_registered_schedule(name, grid, HYPOTHETICAL_4SM)
        simulate_kernel(schedule, HYPOTHETICAL_4SM, check_invariants=True)

    @pytest.mark.parametrize("name", DECOMPOSITION_NAMES)
    def test_registered_schedules_pass_under_faults(self, name):
        problem = GemmProblem(384, 384, 128, dtype=FP16_FP32)
        grid = TileGrid(problem, Blocking(128, 128, 32))
        schedule = build_registered_schedule(name, grid, HYPOTHETICAL_4SM)
        cfg = FaultConfig.straggler_sweep_point(1.5, seed=11)
        simulate_kernel(
            schedule, HYPOTHETICAL_4SM, faults=cfg, check_invariants=True
        )

    def test_report_counts_protocol_events(self):
        schedule, trace = legal_pair()
        report = check_protocol_invariants(schedule, trace)
        assert isinstance(report, InvariantReport)
        assert report.num_ctas == 2 and report.num_tiles == 1
        assert report.signals == report.fixups == report.waits == 1
        assert report.min_fixup_slack >= 0.0


# --------------------------------------------------------------------- #
# Structural breaches (broken-schedule fixtures)                          #
# --------------------------------------------------------------------- #


class TestStructuralBreaches:
    def check(self, schedule, match):
        with pytest.raises(ProtocolViolation, match=match):
            check_protocol_invariants(schedule, DUMMY_TRACE)

    def test_overlapping_k_ranges(self):
        sched = fake_schedule(
            [owner_item(0, end=6, peers=(1,)), contrib_item(1, begin=4)]
        )
        self.check(sched, "covered twice")

    def test_k_range_gap(self):
        sched = fake_schedule(
            [owner_item(0, end=3, peers=(1,)), contrib_item(1, begin=5)]
        )
        self.check(sched, "gap at iterations")

    def test_short_coverage(self):
        sched = fake_schedule([owner_item(0, end=6)])
        self.check(sched, "stops at iteration 6 of 8")

    def test_no_owner(self):
        sched = fake_schedule(
            [contrib_item(0, begin=0, end=4), contrib_item(1, begin=4)]
        )
        self.check(sched, "0 owners")

    def test_peer_list_mismatch(self):
        sched = fake_schedule(
            [owner_item(0, peers=(5,)), contrib_item(1)]
        )
        self.check(sched, "contributors")

    def test_tile_out_of_range(self):
        sched = fake_schedule([owner_item(0, tile=3, end=8)])
        self.check(sched, "outside grid")

    def test_uncovered_tile(self):
        sched = fake_schedule([owner_item(0, end=8)], num_tiles=2)
        self.check(sched, "no k-range coverage")


# --------------------------------------------------------------------- #
# Temporal breaches (tampered traces)                                     #
# --------------------------------------------------------------------- #


class TestTemporalBreaches:
    def test_legal_pair_sanity(self):
        schedule, trace = legal_pair()
        check_protocol_invariants(schedule, trace)

    def test_wait_released_before_publication(self):
        schedule, trace = legal_pair()
        # Publication lands at cycle 8; release the wait a cycle early.
        bad = tamper(trace, 0, index=2, segment={"end": 7.0})
        with pytest.raises(ProtocolViolation, match="before the flag"):
            check_protocol_invariants(schedule, bad)

    def test_wait_released_at_wrong_time(self):
        schedule, trace = legal_pair()
        bad = tamper(trace, 0, index=2, segment={"end": 8.5})
        bad = tamper(bad, 0, index=3, segment={"start": 8.5})
        with pytest.raises(ProtocolViolation, match="not at max"):
            check_protocol_invariants(schedule, bad)

    def test_dropped_segment_breaks_kind_sequence(self):
        schedule, trace = legal_pair()
        bad = tamper(trace, 0, drop_index=3)  # owner skips its FIXUP
        with pytest.raises(ProtocolViolation, match="prescribes"):
            check_protocol_invariants(schedule, bad)

    def test_wait_on_wrong_peer_slot(self):
        schedule, trace = legal_pair()
        bad = tamper(trace, 0, index=2, segment={"slot": 9})
        with pytest.raises(ProtocolViolation, match="targets slot"):
            check_protocol_invariants(schedule, bad)

    def test_signal_on_foreign_slot(self):
        schedule, trace = legal_pair()
        bad = tamper(trace, 1, index=3, segment={"slot": 0})
        with pytest.raises(ProtocolViolation, match="only its own"):
            check_protocol_invariants(schedule, bad)

    def test_overlapping_segments_within_cta(self):
        schedule, trace = legal_pair()
        bad = tamper(trace, 1, index=2, segment={"start": 0.5})
        with pytest.raises(ProtocolViolation, match="before the previous"):
            check_protocol_invariants(schedule, bad)

    def test_duplicate_cta_record(self):
        schedule, trace = legal_pair()
        dup = ExecutionTrace(
            num_sm_slots=trace.num_sm_slots, ctas=trace.ctas + [trace.ctas[0]]
        )
        with pytest.raises(ProtocolViolation, match="twice"):
            check_protocol_invariants(schedule, dup)

    def test_missing_cta_record(self):
        schedule, trace = legal_pair()
        short = ExecutionTrace(
            num_sm_slots=trace.num_sm_slots, ctas=trace.ctas[:1]
        )
        with pytest.raises(ProtocolViolation, match="mismatch"):
            check_protocol_invariants(schedule, short)


# --------------------------------------------------------------------- #
# Conservation breaches (partials leaked or double-counted)               #
# --------------------------------------------------------------------- #


class TestConservation:
    def test_orphaned_partial(self):
        """A contributor signals but no owner ever accumulates it."""
        schedule = fake_schedule([owner_item(0, peers=()), contrib_item(1)])
        tasks = [
            CtaTask(
                cta=0,
                segments=(
                    TimedSegment(SegmentKind.PROLOGUE, 1.0),
                    TimedSegment(SegmentKind.COMPUTE, 4.0),
                    TimedSegment(SegmentKind.STORE_TILE, 1.0),
                ),
            ),
            CtaTask(
                cta=1,
                segments=(
                    TimedSegment(SegmentKind.PROLOGUE, 1.0),
                    TimedSegment(SegmentKind.COMPUTE, 6.0),
                    TimedSegment(SegmentKind.STORE_PARTIALS, 1.0),
                    TimedSegment(SegmentKind.SIGNAL, 0.0, 1),
                ),
            ),
        ]
        trace = execute_tasks(tasks, 2)
        with pytest.raises(ProtocolViolation, match="no owner ever"):
            check_protocol_invariants(schedule, trace, check_structure=False)

    def test_double_counted_partial(self):
        """Two owners both accumulate the same contributor's partials."""
        schedule = fake_schedule(
            [
                owner_item(0, tile=0, peers=(2,)),
                owner_item(1, tile=1, end=8, peers=(2,)),
                contrib_item(2, tile=0),
            ],
            num_tiles=2,
        )

        def owner_task(cta):
            return CtaTask(
                cta=cta,
                segments=(
                    TimedSegment(SegmentKind.PROLOGUE, 1.0),
                    TimedSegment(SegmentKind.COMPUTE, 4.0),
                    TimedSegment(SegmentKind.WAIT, 0.0, 2),
                    TimedSegment(SegmentKind.FIXUP, 2.0, 2),
                    TimedSegment(SegmentKind.STORE_TILE, 1.0),
                ),
            )

        tasks = [
            owner_task(0),
            owner_task(1),
            CtaTask(
                cta=2,
                segments=(
                    TimedSegment(SegmentKind.PROLOGUE, 1.0),
                    TimedSegment(SegmentKind.COMPUTE, 6.0),
                    TimedSegment(SegmentKind.STORE_PARTIALS, 1.0),
                    TimedSegment(SegmentKind.SIGNAL, 0.0, 2),
                ),
            ),
        ]
        trace = execute_tasks(tasks, 3)
        with pytest.raises(ProtocolViolation, match="double-counted"):
            check_protocol_invariants(schedule, trace, check_structure=False)
