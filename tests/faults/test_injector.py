"""FaultInjector: determinism, order-independence, memoized logging."""

import pytest

from repro.faults import FaultConfig, FaultInjector
from repro.gpu import SegmentKind
from repro.obs.counters import get_counter, reset_counters


@pytest.fixture(autouse=True)
def _fresh_counters():
    reset_counters()
    yield
    reset_counters()


def full_config(seed=0):
    """Every dimension armed, all probabilities certain."""
    return FaultConfig(
        seed=seed,
        straggler_prob=1.0,
        straggler_severity=0.5,
        clock_skew=0.2,
        mem_jitter=0.3,
        signal_delay_prob=1.0,
        signal_delay_cycles=100.0,
        signal_drop_prob=1.0,
        preempt_prob=1.0,
        preempt_penalty_cycles=50.0,
    )


class TestNullConfig:
    """A null injector must be bitwise inert — exact identities, no log."""

    def test_all_queries_are_identity(self):
        inj = FaultInjector(FaultConfig.none())
        assert inj.slot_multiplier(3) == 1.0
        assert inj.mem_latency_multiplier(0, 2, SegmentKind.FIXUP) == 1.0
        base = 1234.5678901234
        assert inj.segment_cycles(0, 1, SegmentKind.COMPUTE, base, 0) == base
        assert inj.signal_delay(7) == 0.0
        assert not inj.signal_dropped(7)

    def test_nothing_logged_or_counted(self):
        inj = FaultInjector(FaultConfig.none())
        inj.slot_multiplier(0)
        inj.segment_cycles(0, 0, SegmentKind.COMPUTE, 10.0, 0)
        inj.signal_dropped(0)
        assert inj.log == []
        assert inj.injection_counts() == {}
        assert get_counter("faults.straggler") == 0


class TestDeterminism:
    def test_same_seed_same_draws(self):
        a = FaultInjector(full_config(seed=42))
        b = FaultInjector(full_config(seed=42))
        for slot in range(8):
            assert a.slot_multiplier(slot) == b.slot_multiplier(slot)
        for cta in range(4):
            assert a.signal_delay(cta) == b.signal_delay(cta)
            assert a.signal_dropped(cta) == b.signal_dropped(cta)
            assert a.mem_latency_multiplier(
                cta, 1, SegmentKind.STORE_PARTIALS
            ) == b.mem_latency_multiplier(cta, 1, SegmentKind.STORE_PARTIALS)
            assert a.segment_cycles(
                cta, 0, SegmentKind.COMPUTE, 100.0, cta
            ) == b.segment_cycles(cta, 0, SegmentKind.COMPUTE, 100.0, cta)

    def test_query_order_does_not_matter(self):
        a = FaultInjector(full_config(seed=7))
        b = FaultInjector(full_config(seed=7))
        fwd = [a.slot_multiplier(s) for s in range(6)]
        rev = [b.slot_multiplier(s) for s in reversed(range(6))]
        assert fwd == list(reversed(rev))

    def test_different_seeds_differ(self):
        a = FaultInjector(full_config(seed=1))
        b = FaultInjector(full_config(seed=2))
        assert any(
            a.slot_multiplier(s) != b.slot_multiplier(s) for s in range(16)
        )

    def test_dimensions_are_independent(self):
        """Toggling one knob leaves other dimensions' draws untouched."""
        base = full_config(seed=5)
        import dataclasses

        no_drop = dataclasses.replace(base, signal_drop_prob=0.0)
        a = FaultInjector(base)
        b = FaultInjector(no_drop)
        for slot in range(8):
            assert a.slot_multiplier(slot) == b.slot_multiplier(slot)
        for cta in range(4):
            assert a.signal_delay(cta) == b.signal_delay(cta)


class TestDimensions:
    def test_straggler_multiplier_exact(self):
        cfg = FaultConfig(straggler_prob=1.0, straggler_severity=0.5)
        inj = FaultInjector(cfg)
        assert inj.slot_multiplier(0) == 1.5

    def test_clock_skew_bounded(self):
        cfg = FaultConfig(clock_skew=0.2)
        inj = FaultInjector(cfg)
        for slot in range(16):
            assert 1.0 <= inj.slot_multiplier(slot) < 1.2 + 1e-12

    def test_mem_jitter_only_on_memory_kinds(self):
        cfg = FaultConfig(mem_jitter=0.5)
        inj = FaultInjector(cfg)
        assert inj.mem_latency_multiplier(0, 0, SegmentKind.COMPUTE) == 1.0
        assert inj.mem_latency_multiplier(0, 0, SegmentKind.PROLOGUE) == 1.0
        for kind in (
            SegmentKind.STORE_PARTIALS,
            SegmentKind.FIXUP,
            SegmentKind.STORE_TILE,
        ):
            mult = inj.mem_latency_multiplier(1, 2, kind)
            assert 1.0 <= mult < 1.5 + 1e-12

    def test_preempt_only_on_compute(self):
        cfg = FaultConfig(preempt_prob=1.0, preempt_penalty_cycles=50.0)
        inj = FaultInjector(cfg)
        base = 100.0
        hit = inj.segment_cycles(0, 0, SegmentKind.COMPUTE, base, 0)
        assert hit >= base + 50.0  # penalty + lost-fraction re-execution
        assert hit <= base + 50.0 + base
        untouched = inj.segment_cycles(0, 1, SegmentKind.STORE_TILE, base, 0)
        assert untouched == base

    def test_preempt_skips_zero_cycle_compute(self):
        cfg = FaultConfig(preempt_prob=1.0, preempt_penalty_cycles=50.0)
        inj = FaultInjector(cfg)
        assert inj.segment_cycles(0, 0, SegmentKind.COMPUTE, 0.0, 0) == 0.0

    def test_signal_delay_bounded(self):
        cfg = FaultConfig(signal_delay_prob=1.0, signal_delay_cycles=100.0)
        inj = FaultInjector(cfg)
        for cta in range(8):
            d = inj.signal_delay(cta)
            assert 50.0 <= d < 100.0 + 1e-9

    def test_signal_drop_certain(self):
        inj = FaultInjector(FaultConfig(signal_drop_prob=1.0))
        assert inj.signal_dropped(0) and inj.signal_dropped(5)
        assert inj.dropped_signals == frozenset({0, 5})

    def test_signal_drop_never(self):
        inj = FaultInjector(FaultConfig(signal_drop_prob=0.0))
        assert not inj.signal_dropped(0)
        assert inj.dropped_signals == frozenset()


class TestMemoizationAndLogging:
    def test_repeat_queries_log_once(self):
        inj = FaultInjector(
            FaultConfig(straggler_prob=1.0, straggler_severity=1.0)
        )
        first = inj.slot_multiplier(0)
        for _ in range(5):
            assert inj.slot_multiplier(0) == first
        assert len(inj.log) == 1
        assert get_counter("faults.straggler") == 1

    def test_log_entries_carry_site(self):
        inj = FaultInjector(FaultConfig(mem_jitter=0.5))
        inj.mem_latency_multiplier(3, 7, SegmentKind.FIXUP)
        (fault,) = inj.log
        assert fault.kind == "mem_jitter"
        assert fault.cta == 3 and fault.segment == 7
        assert fault.value > 1.0

    def test_injection_counts_match_log(self):
        inj = FaultInjector(full_config())
        for slot in range(4):
            inj.slot_multiplier(slot)
        for cta in range(3):
            inj.signal_dropped(cta)
        counts = inj.injection_counts()
        assert sum(counts.values()) == len(inj.log)
        assert counts["straggler"] == 4  # prob 1.0: every slot
        assert counts["clock_skew"] == 4
        assert counts["signal_drop"] == 3

    def test_counters_registry_updated(self):
        inj = FaultInjector(FaultConfig(signal_drop_prob=1.0))
        inj.signal_dropped(0)
        inj.signal_dropped(1)
        assert get_counter("faults.signal_drop") == 2
