"""Fault sweep: determinism, baselines, deadlock reporting, table render."""

import dataclasses

import pytest

from repro.errors import ConfigurationError
from repro.faults import FaultConfig, format_sweep_table, run_fault_sweep
from repro.faults.sweep import build_registered_schedule
from repro.gemm import FP16_FP32, Blocking, GemmProblem, TileGrid
from repro.gpu import HYPOTHETICAL_4SM, simulate_kernel
from repro.schedules.registry import DECOMPOSITION_NAMES


@pytest.fixture(scope="module")
def problem():
    return GemmProblem(384, 384, 128, dtype=FP16_FP32)


def sweep(problem, **kw):
    kw.setdefault("severities", (0.0, 1.0))
    return run_fault_sweep(problem, HYPOTHETICAL_4SM, **kw)


class TestSweep:
    def test_covers_every_schedule_and_severity(self, problem):
        cells = sweep(problem)
        assert {(c.schedule, c.severity) for c in cells} == {
            (n, s) for n in DECOMPOSITION_NAMES for s in (0.0, 1.0)
        }

    def test_bitwise_deterministic(self, problem):
        assert sweep(problem) == sweep(problem)

    def test_zero_severity_matches_unfaulted_simulator(self, problem):
        cells = sweep(problem, schedule_names=("stream_k",))
        zero = next(c for c in cells if c.severity == 0.0)
        grid = TileGrid(problem, Blocking(*problem.dtype.default_blocking))
        schedule = build_registered_schedule("stream_k", grid, HYPOTHETICAL_4SM)
        pristine = simulate_kernel(schedule, HYPOTHETICAL_4SM)
        assert zero.makespan == pristine.trace.makespan  # bitwise
        assert zero.baseline == zero.makespan
        assert zero.degradation_pct == 0.0

    def test_severity_never_speeds_things_up(self, problem):
        cells = sweep(problem)
        for c in cells:
            if not c.deadlocked:
                assert c.makespan >= c.baseline

    def test_injections_recorded_per_cell(self, problem):
        cells = sweep(problem, schedule_names=("stream_k",))
        zero = next(c for c in cells if c.severity == 0.0)
        hot = next(c for c in cells if c.severity == 1.0)
        assert zero.injections == {}
        assert sum(hot.injections.values()) > 0

    def test_empty_severities_rejected(self, problem):
        with pytest.raises(ConfigurationError):
            run_fault_sweep(problem, HYPOTHETICAL_4SM, severities=())


class TestDeadlockCells:
    def factory(self, severity, seed):
        cfg = FaultConfig.straggler_sweep_point(severity, seed)
        if severity > 0.0:
            cfg = dataclasses.replace(cfg, signal_drop_prob=1.0)
        return cfg

    def test_dropped_signals_report_as_deadlock(self, problem):
        cells = sweep(
            problem,
            schedule_names=("stream_k",),
            config_factory=self.factory,
        )
        hot = next(c for c in cells if c.severity == 1.0)
        assert hot.deadlocked
        assert hot.makespan == float("inf")
        assert hot.degradation_pct == float("inf")
        assert hot.injections.get("signal_drop", 0) > 0

    def test_data_parallel_has_no_signals_to_drop(self, problem):
        cells = sweep(
            problem,
            schedule_names=("data_parallel",),
            config_factory=self.factory,
        )
        assert not any(c.deadlocked for c in cells)


class TestTable:
    def test_render_contains_all_cells(self, problem):
        cells = sweep(problem)
        table = format_sweep_table(cells)
        for name in DECOMPOSITION_NAMES:
            assert name in table
        assert "sev 0.00" in table and "sev 1.00" in table
        assert "cyc" in table and "%" in table

    def test_render_marks_deadlocks(self, problem):
        cells = sweep(
            problem,
            schedule_names=("stream_k",),
            config_factory=TestDeadlockCells().factory,
        )
        assert "DEADLOCK" in format_sweep_table(cells)

    def test_empty(self):
        assert "empty" in format_sweep_table([])
