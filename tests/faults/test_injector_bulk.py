"""Bulk ``draws_for_sites`` API: bitwise scalar parity, shared memo.

The vectorized executor backend prices a whole schedule's fault draws in
a handful of array passes.  These tests pin the contract that makes that
safe:

* every bulk value is bitwise identical to the scalar query for the
  same site (the splitmix64 hash vectorizes exactly — uint64 wraparound
  plus an exact power-of-two division);
* bulk and scalar queries share one memo, in either order, so a site is
  logged and counted exactly once regardless of the query path;
* repeated ``build_tasks`` calls against one injector leave the log and
  the ``faults.*`` counters untouched (the memoized-draw regression the
  bulk API exists to make structural).
"""

import numpy as np
import pytest

from repro.faults import FaultConfig, FaultInjector
from repro.gpu import SegmentKind
from repro.gpu.costmodel import KernelCostModel
from repro.obs.counters import get_counter, reset_counters


@pytest.fixture(autouse=True)
def _fresh_counters():
    reset_counters()
    yield
    reset_counters()


def partial_config(seed=7):
    """Probabilities strictly inside (0, 1) so both branches occur."""
    return FaultConfig(
        seed=seed,
        straggler_prob=0.4,
        straggler_severity=0.5,
        clock_skew=0.2,
        mem_jitter=0.3,
        signal_delay_prob=0.5,
        signal_delay_cycles=100.0,
        signal_drop_prob=0.3,
        preempt_prob=0.45,
        preempt_penalty_cycles=50.0,
    )


SLOTS = np.arange(32, dtype=np.int64)
CTAS = np.arange(48, dtype=np.int64)
SEGS = np.tile(np.arange(6, dtype=np.int64), 8)
BASE = np.linspace(100.0, 5000.0, 48)


class TestBitwiseScalarParity:
    def test_slot_multipliers(self):
        bulk = FaultInjector(partial_config())
        scalar = FaultInjector(partial_config())
        got = bulk.draws_for_sites("slot_multiplier", SLOTS)
        want = [scalar.slot_multiplier(int(s)) for s in SLOTS]
        assert got.tolist() == want
        assert any(m != 1.0 for m in want)  # config actually bites

    def test_preempt_penalties(self):
        bulk = FaultInjector(partial_config())
        scalar = FaultInjector(partial_config())
        got = bulk.draws_for_sites(
            "preempt_penalty", CTAS, SEGS, base_cycles=BASE
        )
        # segment_cycles on slot with multiplier 1 isolates the penalty:
        # use a config clone with only preemption armed.
        only = FaultConfig(seed=7, preempt_prob=0.45, preempt_penalty_cycles=50.0)
        bulk2 = FaultInjector(only)
        scalar2 = FaultInjector(only)
        got2 = bulk2.draws_for_sites(
            "preempt_penalty", CTAS, SEGS, base_cycles=BASE
        )
        want2 = []
        for c, s, b in zip(CTAS, SEGS, BASE):
            scalar2.segment_cycles(
                int(c), int(s), SegmentKind.COMPUTE, float(b), 0
            )
            # Read the memoized penalty directly: subtracting base from
            # segment_cycles' sum would reintroduce rounding.
            want2.append(scalar2._seg_mult[(int(c), int(s))])
        assert got2.tolist() == want2
        assert got.tolist() == got2.tolist()  # dimension independence
        assert any(p > 0.0 for p in want2) and any(p == 0.0 for p in want2)

    def test_mem_jitter(self):
        bulk = FaultInjector(partial_config())
        scalar = FaultInjector(partial_config())
        got = bulk.draws_for_sites("mem_jitter", CTAS, SEGS)
        want = [
            scalar.mem_latency_multiplier(int(c), int(s), SegmentKind.FIXUP)
            for c, s in zip(CTAS, SEGS)
        ]
        assert got.tolist() == want

    def test_signal_delays_and_drops(self):
        bulk = FaultInjector(partial_config())
        scalar = FaultInjector(partial_config())
        delays = bulk.draws_for_sites("signal_delay", CTAS)
        drops = bulk.draws_for_sites("signal_drop", CTAS)
        assert delays.tolist() == [scalar.signal_delay(int(c)) for c in CTAS]
        assert drops.tolist() == [scalar.signal_dropped(int(c)) for c in CTAS]
        assert bulk.dropped_signals == scalar.dropped_signals
        assert any(delays > 0.0) and any(delays == 0.0)
        assert drops.any() and not drops.all()

    def test_unknown_dimension_rejected(self):
        from repro.errors import ConfigurationError

        inj = FaultInjector(partial_config())
        with pytest.raises(ConfigurationError):
            inj.draws_for_sites("nonsense", CTAS)
        with pytest.raises(ConfigurationError):
            inj.draws_for_sites("preempt_penalty", CTAS, SEGS)

    def test_null_config_is_inert(self):
        inj = FaultInjector(FaultConfig.none())
        assert inj.draws_for_sites("slot_multiplier", SLOTS).tolist() == [
            1.0
        ] * len(SLOTS)
        assert not inj.draws_for_sites(
            "preempt_penalty", CTAS, SEGS, base_cycles=BASE
        ).any()
        assert inj.draws_for_sites("mem_jitter", CTAS, SEGS).tolist() == [
            1.0
        ] * len(CTAS)
        assert not inj.draws_for_sites("signal_delay", CTAS).any()
        assert not inj.draws_for_sites("signal_drop", CTAS).any()
        assert inj.log == []

    def test_empty_site_arrays(self):
        inj = FaultInjector(partial_config())
        empty = np.array([], dtype=np.int64)
        assert inj.draws_for_sites("slot_multiplier", empty).shape == (0,)
        assert inj.draws_for_sites("signal_drop", empty).shape == (0,)


class TestMemoInterplay:
    """Scalar-then-bulk and bulk-then-scalar agree; one log entry per site."""

    def test_scalar_then_bulk_no_double_logging(self):
        inj = FaultInjector(partial_config())
        scalar_vals = [inj.slot_multiplier(int(s)) for s in SLOTS[:8]]
        log_len = len(inj.log)
        bulk_vals = inj.draws_for_sites("slot_multiplier", SLOTS[:8])
        assert bulk_vals.tolist() == scalar_vals
        assert len(inj.log) == log_len  # nothing re-logged

    def test_bulk_then_scalar_no_double_logging(self):
        inj = FaultInjector(partial_config())
        bulk_vals = inj.draws_for_sites("signal_delay", CTAS)
        log_len = len(inj.log)
        counts = inj.injection_counts()
        scalar_vals = [inj.signal_delay(int(c)) for c in CTAS]
        assert bulk_vals.tolist() == scalar_vals
        assert len(inj.log) == log_len
        assert inj.injection_counts() == counts

    def test_duplicate_sites_within_one_call(self):
        inj = FaultInjector(partial_config())
        dup = np.concatenate([SLOTS[:4], SLOTS[:4]])
        vals = inj.draws_for_sites("slot_multiplier", dup)
        assert vals[:4].tolist() == vals[4:].tolist()
        ref = FaultInjector(partial_config())
        ref.draws_for_sites("slot_multiplier", SLOTS[:4])
        assert len(inj.log) == len(ref.log)

    def test_bulk_matches_global_counters(self):
        inj = FaultInjector(partial_config())
        inj.draws_for_sites("slot_multiplier", SLOTS)
        inj.draws_for_sites("mem_jitter", CTAS, SEGS)
        inj.draws_for_sites("signal_drop", CTAS)
        for kind, n in inj.injection_counts().items():
            assert get_counter("faults.%s" % kind) == n


class TestRepeatedBuildTasks:
    """Re-pricing a schedule must not re-log memoized draws (satellite fix)."""

    def test_second_build_tasks_is_silent(self, fp16_grid, a100):
        from repro.schedules.registry import make_decomposition

        cost = KernelCostModel(
            gpu=a100,
            blocking=fp16_grid.blocking,
            dtype=fp16_grid.problem.dtype,
        )
        schedule = make_decomposition("stream_k", g=8).build(fp16_grid)
        inj = FaultInjector(partial_config())
        first = cost.build_tasks(schedule, faults=inj)
        log_len = len(inj.log)
        counts = {
            k: get_counter("faults.%s" % k) for k in inj.injection_counts()
        }
        second = cost.build_tasks(schedule, faults=inj)
        assert len(inj.log) == log_len
        for k, n in counts.items():
            assert get_counter("faults.%s" % k) == n
        for a, b in zip(first, second):
            assert [(s.kind, s.cycles, s.slot) for s in a.segments] == [
                (s.kind, s.cycles, s.slot) for s in b.segments
            ]
