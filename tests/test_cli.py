"""CLI tests: every subcommand, argument validation, output contents."""

import json

import pytest

from repro.cli import build_parser, main
from repro.obs import counters, profiler
from repro.obs.export import validate_chrome_trace


class TestParser:
    def test_all_subcommands_registered(self):
        parser = build_parser()
        sub = next(
            a for a in parser._actions if isinstance(a, type(parser._actions[-1]))
        )
        args = parser.parse_args(["plan", "128", "128", "128"])
        assert args.command == "plan"

    def test_missing_command_exits(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_bad_dtype_exits(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["plan", "1", "1", "1", "--dtype", "fp8"])

    def test_bad_gpu_raises_listing_presets(self):
        # --gpu is free-form (it also accepts spec-JSON paths), so unknown
        # names surface as ConfigurationError at resolve time, naming the
        # registered presets.
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="h100_sxm"):
            main(["plan", "1", "1", "1", "--gpu", "h100"])


class TestCommands:
    def test_plan(self, capsys):
        assert main(["plan", "1280", "1536", "4096"]) == 0
        out = capsys.readouterr().out
        assert "two_tile" in out
        assert "108 CTAs" in out

    def test_plan_small_problem_uses_model(self, capsys):
        assert main(["plan", "128", "128", "16384"]) == 0
        out = capsys.readouterr().out
        assert "basic_stream_k" in out
        assert "grid size      : 8" in out  # the Figure 8c optimum

    def test_simulate_with_numerics(self, capsys):
        rc = main(
            ["simulate", "384", "384", "128", "--gpu", "hypothetical_4sm", "--numeric"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "data_parallel" in out and "two_tile_stream_k" in out
        assert "validated" in out
        assert "75.0%" in out  # the Figure 1a ceiling

    def test_model_curve(self, capsys):
        assert main(["model", "128", "128", "16384"]) == 0
        out = capsys.readouterr().out
        assert "g_best = 8" in out
        assert "<-- g_best" in out

    def test_corpus_table(self, capsys):
        assert main(["corpus", "--size", "200", "--dtype", "fp64"]) == 0
        out = capsys.readouterr().out
        assert "Average" in out and "vs cuBLAS" in out
        assert "200 shapes" in out

    def test_calibrate(self, capsys):
        assert main(["calibrate", "--dtype", "fp64"]) == 0
        out = capsys.readouterr().out
        assert "per MAC-loop iteration" in out

    def test_fp64_plan_on_small_gpu(self, capsys):
        rc = main(
            ["plan", "200", "200", "200", "--dtype", "fp64", "--gpu", "hypothetical_4sm"]
        )
        assert rc == 0
        assert "fp64" in capsys.readouterr().out


class TestObservabilityCommands:
    @pytest.fixture(autouse=True)
    def _clean_obs(self):
        yield
        profiler.disable_profiling()
        profiler.reset_profile()
        counters.reset_counters()

    def test_trace_writes_valid_chrome_json(self, capsys, tmp_path):
        out_path = tmp_path / "t.json"
        rc = main(
            ["trace", "384", "384", "128", "--gpu", "hypothetical_4sm",
             "--schedule", "stream_k", "--g", "4", "--out", str(out_path)]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "perfetto" in out.lower()
        assert "makespan" in out
        with open(out_path) as fh:
            doc = json.load(fh)
        validate_chrome_trace(doc)
        assert doc["otherData"]["num_sm_slots"] == 4

    @pytest.mark.parametrize(
        "schedule", ["data_parallel", "fixed_split", "two_tile_stream_k"]
    )
    def test_trace_other_schedules(self, schedule, capsys, tmp_path):
        out_path = tmp_path / "t.json"
        rc = main(
            ["trace", "512", "512", "256", "--gpu", "hypothetical_4sm",
             "--schedule", schedule, "--out", str(out_path)]
        )
        assert rc == 0
        assert schedule in capsys.readouterr().out
        validate_chrome_trace(json.loads(out_path.read_text()))

    def test_profile_prints_spans_and_counters(self, capsys):
        rc = main(["profile", "--size", "120", "--repeat", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "profile_corpus" in out
        assert "evaluate_corpus" in out
        assert "evalcache" in out  # counters report includes cache traffic

    def test_profile_flame_and_out(self, capsys, tmp_path):
        out_path = tmp_path / "p.json"
        rc = main(["profile", "--size", "80", "--flame", "--out", str(out_path)])
        assert rc == 0
        assert "|" in capsys.readouterr().out  # flamegraph bars
        validate_chrome_trace(json.loads(out_path.read_text()))

    def test_repro_profile_env_reports_on_stderr(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE", "1")
        assert main(["plan", "1280", "1536", "4096"]) == 0
        captured = capsys.readouterr()
        assert "two_tile" in captured.out
        assert "self" in captured.err  # profiler report table header
        assert "counter" in captured.err  # counters report table header


class TestFaultsCommand:
    ARGS = ["faults", "384", "384", "128", "--gpu", "hypothetical_4sm"]

    def test_sweep_table_printed(self, capsys):
        rc = main(self.ARGS + ["--severities", "0,1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "fault sweep" in out
        assert "invariant-checked" in out
        for name in ("data_parallel", "stream_k", "two_tile_stream_k"):
            assert name in out
        assert "sev 0.00" in out and "sev 1.00" in out
        assert "injected faults" in out

    def test_schedule_subset_and_seed(self, capsys):
        rc = main(
            self.ARGS
            + ["--severities", "0,0.5", "--schedules", "stream_k", "--seed", "3"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "stream_k" in out
        assert "data_parallel" not in out
        assert "seed 3" in out

    def test_drop_signals_reports_deadlock_not_hang(self, capsys):
        rc = main(
            self.ARGS
            + ["--severities", "0,1", "--schedules", "stream_k",
               "--drop-signals", "1.0"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "DEADLOCK" in out
        # --drop-signals applies at every severity, baseline included.
        assert "2 deadlocked" in out

    def test_no_check_skips_invariants(self, capsys):
        rc = main(self.ARGS + ["--severities", "0", "--no-check"])
        assert rc == 0
        assert "invariant-checked" not in capsys.readouterr().out

    def test_bad_severities_rejected(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            main(self.ARGS + ["--severities", "0,banana"])


class TestCrossHwCommand:
    def test_table_and_winners_printed(self, capsys):
        rc = main(
            [
                "crosshw",
                "--gpus", "a100,h100_sxm,rtx3090",
                "--schedules", "data_parallel,stream_k",
                "--size", "120",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "cross-hardware sweep" in out
        assert "<-- winner" in out
        for name in ("a100", "h100_sxm", "rtx3090"):
            assert "%s " % name in out
            assert "winner:" in out

    def test_custom_json_device(self, capsys, tmp_path):
        from repro.gpu.spec import HYPOTHETICAL_4SM

        path = tmp_path / "tiny.json"
        path.write_text(HYPOTHETICAL_4SM.to_json())
        rc = main(
            [
                "crosshw",
                "--gpus", "a100,%s" % path,
                "--schedules", "stream_k",
                "--size", "60",
            ]
        )
        assert rc == 0
        assert "hypothetical_4sm" in capsys.readouterr().out

    def test_unknown_schedule_raises(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="supports"):
            main(["crosshw", "--schedules", "bogus", "--size", "50"])


class TestExecutorFlag:
    """--executor / $REPRO_EXECUTOR: every backend prints the same bytes."""

    @pytest.fixture(autouse=True)
    def _reset_backend(self):
        from repro.gpu import set_default_executor

        yield
        set_default_executor(None)

    def test_simulate_output_backend_invariant(self, capsys):
        args = ["simulate", "384", "384", "128", "--gpu", "hypothetical_4sm"]
        assert main(args) == 0
        baseline = capsys.readouterr().out
        assert main(args + ["--executor", "numpy"]) == 0
        assert capsys.readouterr().out == baseline
        assert main(args + ["--executor", "numba"]) == 0
        assert capsys.readouterr().out == baseline

    def test_faults_output_backend_invariant(self, capsys):
        args = [
            "faults", "384", "384", "128", "--gpu", "hypothetical_4sm",
            "--severities", "0,1", "--seed", "5",
        ]
        counters.reset_counters()  # the report includes cumulative counters
        assert main(args) == 0
        baseline = capsys.readouterr().out
        counters.reset_counters()
        assert main(args + ["--executor", "numpy"]) == 0
        assert capsys.readouterr().out == baseline

    def test_env_var_selects_backend(self, capsys, monkeypatch):
        from repro.obs import counters as _counters

        monkeypatch.setenv("REPRO_EXECUTOR", "numpy")
        _counters.reset_counters()
        args = ["simulate", "256", "256", "128", "--gpu", "hypothetical_4sm"]
        assert main(args) == 0
        assert _counters.get_counter("executor.backend.numpy") > 0
        assert _counters.get_counter("executor.backend.python") == 0

    def test_flag_overrides_env_var(self, capsys, monkeypatch):
        from repro.obs import counters as _counters

        monkeypatch.setenv("REPRO_EXECUTOR", "numpy")
        _counters.reset_counters()
        args = [
            "simulate", "256", "256", "128", "--gpu", "hypothetical_4sm",
            "--executor", "python",
        ]
        assert main(args) == 0
        assert _counters.get_counter("executor.backend.python") > 0
        assert _counters.get_counter("executor.backend.numpy") == 0

    def test_bad_backend_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["simulate", "1", "1", "1", "--executor", "cuda"]
            )


class TestServeCommand:
    """``repro serve`` / ``repro loadgen`` (docs/SERVING.md)."""

    def test_serve_demo_is_self_terminating(self, capsys):
        rc = main(["serve", "--demo", "60", "--no-persist", "--no-warm"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "serve demo (60 requests" in out
        assert "mode        : in-process" in out
        assert "hit rate" in out and "latency p99" in out

    def test_loadgen_in_process_writes_report(self, capsys, tmp_path):
        out_path = tmp_path / "loadgen.json"
        rc = main(
            ["loadgen", "--requests", "80", "--universe", "8",
             "--clients", "2", "--no-persist", "--no-warm",
             "--out", str(out_path)]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "throughput" in out
        report = json.loads(out_path.read_text())
        assert report["completed"] == 80 and report["failed"] == 0
        assert report["hits"] + report["misses"] == 80

    def test_loadgen_deterministic_trace_hits(self, capsys):
        # One client, universe of 4 shapes, 50 sequential requests: each
        # shape misses exactly once, every other request is a cache hit.
        rc = main(
            ["loadgen", "--requests", "50", "--universe", "4",
             "--clients", "1", "--no-persist", "--no-warm"]
        )
        assert rc == 0
        assert "46 hits / 4 misses" in capsys.readouterr().out

    def test_loadgen_bad_connect_rejected(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="HOST:PORT"):
            main(["loadgen", "--connect", "nonsense"])

    def test_serve_daemon_port_file_and_shutdown(self, capsys, tmp_path):
        import socket as _socket
        import threading
        import time

        port_file = tmp_path / "port"
        argv = [
            "serve", "--port", "0", "--port-file", str(port_file),
            "--no-persist", "--no-warm",
        ]
        rcs = []
        t = threading.Thread(target=lambda: rcs.append(main(argv)))
        t.start()
        deadline = time.monotonic() + 30
        while not port_file.exists() and time.monotonic() < deadline:
            time.sleep(0.01)
        port = int(port_file.read_text())
        with _socket.create_connection(("127.0.0.1", port), timeout=10) as s:
            fh = s.makefile("rwb")
            fh.write(b'{"op": "plan", "m": 512, "n": 512, "k": 4096}\n')
            fh.flush()
            assert json.loads(fh.readline())["ok"]
            fh.write(b'{"op": "shutdown"}\n')
            fh.flush()
            assert json.loads(fh.readline())["bye"]
        t.join(timeout=30)
        assert not t.is_alive() and rcs == [0]
        out = capsys.readouterr().out
        assert "serving plans on 127.0.0.1:%d" % port in out
        assert "served 1 request(s)" in out


class TestAdaptCommand:
    """``repro adapt``: Stream-K++ adaptive replay (docs/ADAPTIVE.md)."""

    def test_adapt_writes_report(self, capsys, tmp_path):
        out_path = tmp_path / "adapt.json"
        rc = main(
            ["adapt", "--requests", "300", "--universe", "32",
             "--out", str(out_path)]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "adaptive replay: 300 requests" in out
        assert "regret vs oracle" in out
        report = json.loads(out_path.read_text())
        assert report["hits"] + report["misses"] == 300
        assert report["regret"]["adaptive_mean"] <= 0.01
        assert report["filter"]["memory_bytes"] > 0

    def test_adapt_analytic_evaluator(self, capsys):
        rc = main(
            ["adapt", "--requests", "200", "--universe", "16",
             "--evaluator", "analytic"]
        )
        assert rc == 0
        assert "analytic evaluator" in capsys.readouterr().out

    def test_adapt_zero_capacity_filter_never_hits(self, capsys, tmp_path):
        out_path = tmp_path / "adapt.json"
        rc = main(
            ["adapt", "--requests", "120", "--universe", "16",
             "--filter-bits", "0", "--evaluator", "analytic",
             "--out", str(out_path)]
        )
        assert rc == 0
        report = json.loads(out_path.read_text())
        assert report["hits"] == 0 and report["misses"] == 120

    def test_serve_demo_with_adaptive_flag(self, capsys):
        rc = main(
            ["serve", "--demo", "40", "--adaptive", "--no-persist",
             "--no-warm"]
        )
        assert rc == 0
        assert "serve demo (40 requests" in capsys.readouterr().out

    def test_bad_evaluator_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["adapt", "--evaluator", "psychic"])


class TestSweepCommand:
    """``repro sweep``: durable journaled sweeps (docs/CHECKPOINTING.md)."""

    ARGS = [
        "sweep", "--size", "300", "--dtype", "fp64",
        "--gpu", "hypothetical_4sm", "--shard-rows", "128",
    ]

    @pytest.fixture(autouse=True)
    def _fresh(self, monkeypatch):
        from repro.harness.parallel import clear_eval_memo

        monkeypatch.delenv("REPRO_JOURNAL_DIR", raising=False)
        clear_eval_memo()
        counters.reset_counters()
        yield
        clear_eval_memo()
        counters.reset_counters()

    def test_requires_journal_dir(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="REPRO_JOURNAL_DIR"):
            main(self.ARGS)

    def test_sweep_then_resume_zero_evaluations(self, capsys, tmp_path):
        jdir = str(tmp_path / "journal")
        assert main(self.ARGS + ["--journal", jdir]) == 0
        out = capsys.readouterr().out
        assert jdir in out
        assert "0 skipped (journal)" in out
        assert "relative performance" in out
        counters.reset_counters()
        assert main(self.ARGS + ["--journal", jdir, "--resume"]) == 0
        out = capsys.readouterr().out
        assert "0 evaluated" in out  # everything came from the journal
        assert counters.get_counter("harness.shards_ok") == 0

    def test_env_var_supplies_journal_dir(self, capsys, tmp_path, monkeypatch):
        jdir = str(tmp_path / "envjournal")
        monkeypatch.setenv("REPRO_JOURNAL_DIR", jdir)
        assert main(self.ARGS) == 0
        assert jdir in capsys.readouterr().out
        import os as _os

        assert _os.path.exists(_os.path.join(jdir, "wal.bin"))

    def test_out_artifact_written(self, capsys, tmp_path):
        import numpy as np

        out_path = str(tmp_path / "timings.npz")
        rc = main(
            self.ARGS
            + ["--journal", str(tmp_path / "j"), "--out", out_path]
        )
        assert rc == 0
        with np.load(out_path, allow_pickle=False) as doc:
            assert doc["shapes"].shape == (300, 3)

    def test_chaos_kill_after_validates(self, tmp_path):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match=">= 1"):
            main(
                self.ARGS
                + ["--journal", str(tmp_path / "j"), "--chaos-kill-after", "0"]
            )

    def test_join_runs_fabric_and_reports(self, capsys, tmp_path):
        jdir = str(tmp_path / "fabric-journal")
        assert main(self.ARGS + ["--join", jdir]) == 0
        out = capsys.readouterr().out
        assert "fabric" in out
        assert "claim(s)" in out
        import os as _os

        assert _os.path.exists(_os.path.join(jdir, "wal.bin"))

    def test_chaos_worker_kill_requires_fabric_mode(self, tmp_path):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="--workers N or --join"):
            main(
                self.ARGS
                + ["--journal", str(tmp_path / "j"),
                   "--chaos-worker-kill", "eval:1"]
            )

    def test_bad_chaos_worker_point_rejected(self, tmp_path):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            main(
                self.ARGS
                + ["--journal", str(tmp_path / "j"), "--workers", "2",
                   "--chaos-worker-kill", "banana:1"]
            )

    def test_corpus_accepts_journal_flags(self, capsys, tmp_path):
        rc = main(
            ["corpus", "--size", "300", "--dtype", "fp64",
             "--gpu", "hypothetical_4sm",
             "--journal", str(tmp_path / "cj"), "--resume"]
        )
        assert rc == 0
        assert "Stream-K" in capsys.readouterr().out
