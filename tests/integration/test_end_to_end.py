"""End-to-end pipeline tests: every decomposition x precision, numerics
plus timing plus cross-path consistency in one sweep."""

import numpy as np
import pytest

from repro.gemm import (
    BF16_FP32,
    FP16_FP32,
    FP32,
    FP64,
    Blocking,
    GemmProblem,
    TileGrid,
    random_operands,
    validate_result,
)
from repro.gpu import HYPOTHETICAL_4SM, Executor, KernelCostModel, simulate_kernel
from repro.ensembles import StreamKLibrary
from repro.schedules import (
    data_parallel_schedule,
    dp_one_tile_schedule,
    fixed_split_schedule,
    stream_k_schedule,
    two_tile_schedule,
)

ALL_DTYPES = [FP64, FP32, FP16_FP32, BF16_FP32]


def all_schedules(grid, p=4):
    return [
        data_parallel_schedule(grid),
        fixed_split_schedule(grid, 3),
        stream_k_schedule(grid, p),
        stream_k_schedule(grid, 3 * p + 1),
        two_tile_schedule(grid, p),
        dp_one_tile_schedule(grid, p),
    ]


class TestEveryScheduleEveryDtype:
    @pytest.mark.parametrize("dtype", ALL_DTYPES, ids=lambda d: d.name)
    def test_numerics_validate(self, dtype):
        problem = GemmProblem(90, 70, 110, dtype=dtype)
        grid = TileGrid(problem, Blocking(32, 32, 16))
        a, b = random_operands(problem, 0)
        for sched in all_schedules(grid):
            sched.validate()
            out = sched.execute(a, b)
            validate_result(problem, out, a, b)

    @pytest.mark.parametrize("dtype", [FP64, FP16_FP32], ids=lambda d: d.name)
    def test_simulation_runs_for_all(self, dtype):
        problem = GemmProblem(90, 70, 110, dtype=dtype)
        grid = TileGrid(problem, Blocking(32, 32, 16))
        times = {}
        for sched in all_schedules(grid):
            res = simulate_kernel(sched, HYPOTHETICAL_4SM)
            assert res.time_s > 0
            times[sched.name] = res.time_s
        # the two-tile hybrid should be the best or near-best schedule here
        assert times["two_tile_stream_k"] <= 1.2 * min(times.values())


class TestAlphaBetaThroughEverySchedule:
    def test_full_gemm_definition(self):
        problem = GemmProblem(48, 40, 56, dtype=FP64, alpha=1.5, beta=-0.5)
        grid = TileGrid(problem, Blocking(16, 16, 8))
        a, b = random_operands(problem, 1)
        c = np.linspace(-1, 1, 48 * 40).reshape(48, 40)
        expect = 1.5 * (a @ b) - 0.5 * c
        for sched in all_schedules(grid):
            out = sched.execute(a, b, c=c)
            assert np.allclose(out, expect, rtol=1e-12, atol=1e-12)


class TestLibraryEndToEnd:
    def test_plan_schedule_simulate_validate_roundtrip(self):
        lib = StreamKLibrary(HYPOTHETICAL_4SM, FP16_FP32)
        for shape in [(300, 260, 96), (128, 128, 512), (512, 128, 64)]:
            problem = GemmProblem(*shape, dtype=FP16_FP32)
            sched = lib.build_schedule(problem)
            sched.validate()
            a, b = random_operands(problem, 2)
            validate_result(problem, sched.execute(a, b), a, b)
            tasks = lib.cost.build_tasks(sched)
            ev = Executor(lib.gpu.total_cta_slots).run(tasks).makespan
            assert lib.makespan_cycles(problem) == pytest.approx(ev, rel=1e-9)


class TestScalingAcrossMachineWidths:
    def test_quantization_gap_grows_with_width(self):
        """The paper's motivation: wider processors suffer more
        quantization loss, and Stream-K recovers it."""
        from repro.gpu import A100
        from repro.harness import evaluate_corpus

        shapes = np.array([[1500, 1500, 2048]])  # 144 tiles on 108 SMs
        res = evaluate_corpus(shapes, FP16_FP32, A100)
        # 144 tiles / 108 SMs -> DP wastes ~26% in the second wave.
        assert float(res.singleton[0] / res.streamk[0]) > 1.2
