"""Integration tests of the paper's headline claims on a reduced corpus.

These are the "does the reproduction reproduce" tests: each asserts a
directional claim from the paper's evaluation over a 2,000-shape subset of
the corpus (the full 32,824 sweep runs in the benchmark harness and is
recorded in EXPERIMENTS.md).
"""

import numpy as np
import pytest

from repro.corpus import CorpusSpec, compute_bound_mask, generate_corpus
from repro.gemm import FP16_FP32, FP64
from repro.gpu import A100
from repro.harness import evaluate_corpus
from repro.metrics import (
    band_width,
    relative_performance,
    roofline_points,
    slowdown_fraction,
)

SPEC = CorpusSpec(size=2000)


@pytest.fixture(scope="module")
def shapes():
    return generate_corpus(SPEC)


@pytest.fixture(scope="module")
def fp64(shapes):
    return evaluate_corpus(shapes, FP64, A100)


@pytest.fixture(scope="module")
def fp16(shapes):
    return evaluate_corpus(shapes, FP16_FP32, A100)


class TestTable1FP64:
    """Paper: avg 1.23x / 1.06x / 1.03x / 1.05x; CB min 0.99x."""

    def test_beats_singleton_on_average(self, fp64):
        rp = relative_performance(fp64.singleton, fp64.streamk)
        assert rp.average > 1.1

    def test_large_strong_scaling_tail_vs_singleton(self, fp64):
        rp = relative_performance(fp64.singleton, fp64.streamk)
        assert rp.maximum > 3.0

    def test_beats_cublas_on_average(self, fp64):
        rp = relative_performance(fp64.cublas, fp64.streamk)
        assert rp.average > 1.0

    def test_matches_or_beats_oracle_on_average(self, fp64):
        rp = relative_performance(fp64.oracle, fp64.streamk)
        assert rp.average > 1.0

    def test_compute_bound_virtually_no_slowdowns(self, fp64, shapes):
        cb = compute_bound_mask(shapes, FP64)
        rp = relative_performance(fp64.cublas[cb], fp64.streamk[cb])
        assert rp.minimum > 0.95
        assert slowdown_fraction(fp64.cublas[cb], fp64.streamk[cb], tol=0.02) < 0.02

    def test_never_catastrophic_vs_singleton(self, fp64):
        rp = relative_performance(fp64.singleton, fp64.streamk)
        assert rp.minimum > 0.7  # paper: 0.77


class TestTable2FP16:
    """Paper: avg 1.63x / 1.13x / 1.15x / 1.12x.  Our simulator weights the
    memory-bound small-shape regime more heavily (see EXPERIMENTS.md), so
    the all-problems columns are asserted directionally and the
    compute-bound column quantitatively."""

    def test_beats_singleton_on_average(self, fp16):
        rp = relative_performance(fp16.singleton, fp16.streamk)
        assert rp.average > 1.05

    def test_compute_bound_beats_cublas(self, fp16, shapes):
        cb = compute_bound_mask(shapes, FP16_FP32)
        rp = relative_performance(fp16.cublas[cb], fp16.streamk[cb])
        assert rp.average > 1.05  # paper: 1.15
        assert rp.minimum > 0.85  # paper: 0.98

    def test_compute_bound_beats_oracle(self, fp16, shapes):
        cb = compute_bound_mask(shapes, FP16_FP32)
        rp = relative_performance(fp16.oracle[cb], fp16.streamk[cb])
        assert rp.average > 1.0  # paper: 1.12 overall

    def test_losses_confined_to_memory_bound_regime(self, fp16, shapes):
        """Sub-threshold shapes are where Stream-K may lose (paper Sec 6:
        'noisy relative performance in the regimes below these
        thresholds')."""
        cb = compute_bound_mask(shapes, FP16_FP32)
        deep_losses = fp16.streamk > 1.25 * fp16.oracle
        assert not (deep_losses & cb).any()


class TestRooflineBands:
    """Figures 5/6: Stream-K's utilization band is the narrowest."""

    def test_fp16_band_ordering(self, fp16, shapes):
        widths = {}
        for name, times in (
            ("singleton", fp16.singleton),
            ("cublas", fp16.cublas),
            ("oracle", fp16.oracle),
            ("streamk", fp16.streamk),
        ):
            i, p = roofline_points(shapes, times, A100, FP16_FP32)
            widths[name] = band_width(i, p)
        assert widths["streamk"] < widths["singleton"]
        assert widths["streamk"] < widths["cublas"]

    def test_fp64_streamk_narrower_than_singleton(self, fp64, shapes):
        i_s, p_s = roofline_points(shapes, fp64.singleton, A100, FP64)
        i_k, p_k = roofline_points(shapes, fp64.streamk, A100, FP64)
        assert band_width(i_k, p_k) < band_width(i_s, p_s)

    def test_oracle_tighter_than_cublas_like(self, fp16, shapes):
        """The selection-heuristic penalty: same blockings, wider band."""
        i_c, p_c = roofline_points(shapes, fp16.cublas, A100, FP16_FP32)
        i_o, p_o = roofline_points(shapes, fp16.oracle, A100, FP16_FP32)
        assert band_width(i_o, p_o) <= band_width(i_c, p_c) * 1.05


class TestStrongScaling:
    """The peak-speedup regime: small m x n, large k."""

    def test_fp64_strong_scaling_speedups(self):
        shapes = np.array([[128, 128, 8192], [128, 256, 8192], [192, 128, 4096]])
        res = evaluate_corpus(shapes, FP64, A100)
        speedup = res.singleton / res.streamk
        assert (speedup > 2.0).all()

    def test_fp16_strong_scaling_speedups(self):
        shapes = np.array([[128, 128, 8192], [256, 128, 8192]])
        res = evaluate_corpus(shapes, FP16_FP32, A100)
        speedup = res.singleton / res.streamk
        assert (speedup > 1.5).all()
