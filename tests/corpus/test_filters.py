"""Intensity filter tests."""

import numpy as np
import pytest

from repro.corpus import compute_bound_mask, generate_corpus, intensity_bins, ops_per_byte
from repro.corpus.generator import CorpusSpec
from repro.gemm import FP16_FP32, FP64, GemmProblem


class TestOpsPerByte:
    def test_matches_problem_property(self):
        shapes = np.array([[512, 768, 1024], [129, 8191, 777]])
        for dtype in (FP64, FP16_FP32):
            vec = ops_per_byte(shapes, dtype)
            for i, (m, n, k) in enumerate(shapes):
                p = GemmProblem(int(m), int(n), int(k), dtype=dtype)
                assert vec[i] == pytest.approx(p.ops_per_byte)

    def test_mask_matches_problem_property(self):
        shapes = generate_corpus(CorpusSpec(size=300))
        for dtype in (FP64, FP16_FP32):
            mask = compute_bound_mask(shapes, dtype)
            for i in range(0, 300, 37):
                p = GemmProblem(*(int(v) for v in shapes[i]), dtype=dtype)
                assert bool(mask[i]) == p.is_compute_bound

    def test_thresholds_differ_by_precision(self):
        shapes = generate_corpus(CorpusSpec(size=500))
        fp64_cb = compute_bound_mask(shapes, FP64).sum()
        fp16_cb = compute_bound_mask(shapes, FP16_FP32).sum()
        # fp64's 150 ops/B bar is easier to clear at 8 B/elem... both
        # nonzero, neither total.
        assert 0 < fp64_cb < 500
        assert 0 < fp16_cb < 500


class TestIntensityBins:
    def test_bins_cover_all_shapes(self):
        shapes = generate_corpus(CorpusSpec(size=400))
        edges, idx = intensity_bins(shapes, FP16_FP32, num_bins=20)
        assert edges.shape == (21,)
        assert idx.min() >= 0 and idx.max() <= 19
        assert idx.shape == (400,)

    def test_edges_monotone(self):
        shapes = generate_corpus(CorpusSpec(size=400))
        edges, _ = intensity_bins(shapes, FP64, num_bins=10)
        assert (np.diff(edges) > 0).all()
