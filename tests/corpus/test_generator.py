"""Corpus generation tests (paper Figure 4)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.corpus import (
    PAPER_CORPUS,
    PAPER_CORPUS_SIZE,
    CorpusSpec,
    corpus_problems,
    generate_corpus,
)
from repro.gemm import FP64


class TestPaperCorpus:
    def test_exactly_32824_shapes(self):
        shapes = generate_corpus()
        assert shapes.shape == (32_824, 3)
        assert PAPER_CORPUS_SIZE == 32_824

    def test_domain_bounds(self):
        shapes = generate_corpus()
        assert shapes.min() >= 128
        assert shapes.max() <= 8192

    def test_deterministic(self):
        assert np.array_equal(generate_corpus(), generate_corpus())

    def test_log_uniform_median(self):
        """Per-axis median of a log-uniform sample sits near the geometric
        mean of the domain, sqrt(128 * 8192) = 1024."""
        shapes = generate_corpus()
        med = np.median(shapes, axis=0)
        assert (700 < med).all() and (med < 1500).all()

    def test_volume_spans_many_orders(self):
        shapes = generate_corpus().astype(np.float64)
        vol = shapes.prod(axis=1)
        assert np.log10(vol.max() / vol.min()) > 4.5


class TestCustomSpecs:
    def test_smaller_corpus_nests(self):
        full = generate_corpus()
        small = generate_corpus(CorpusSpec(size=100))
        # different sizes draw different streams; limit= on problems nests
        probs_full = corpus_problems(FP64, limit=10)
        probs_small = corpus_problems(FP64, limit=5)
        assert [p.shape for p in probs_small] == [
            p.shape for p in probs_full[:5]
        ]
        assert small.shape == (100, 3)
        assert full.shape[0] == 32_824

    def test_seed_changes_corpus(self):
        a = generate_corpus(CorpusSpec(size=50, seed=1))
        b = generate_corpus(CorpusSpec(size=50, seed=2))
        assert not np.array_equal(a, b)

    def test_problems_materialized_with_dtype(self):
        probs = corpus_problems(FP64, limit=7)
        assert len(probs) == 7
        assert all(p.dtype is FP64 for p in probs)

    def test_invalid_specs_rejected(self):
        with pytest.raises(ConfigurationError):
            CorpusSpec(size=0)
        with pytest.raises(ConfigurationError):
            CorpusSpec(lo=0)
        with pytest.raises(ConfigurationError):
            CorpusSpec(lo=100, hi=50)
