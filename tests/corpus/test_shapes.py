"""Named workload shape tests."""

from repro.corpus import (
    conv_im2col_shapes,
    factorization_shapes,
    strong_scaling_shapes,
    transformer_shapes,
)
from repro.gemm import FP64


class TestTransformerShapes:
    def test_standard_layer_geometries(self):
        shapes = transformer_shapes(batch_tokens=4096, d_model=1024, d_ff=4096)
        assert shapes["qkv_proj"].shape == (4096, 3072, 1024)
        assert shapes["mlp_up"].shape == (4096, 4096, 1024)
        assert shapes["mlp_down"].shape == (4096, 1024, 4096)

    def test_all_positive(self):
        for p in transformer_shapes().values():
            assert min(p.shape) >= 1


class TestConvShapes:
    def test_im2col_expansion(self):
        shapes = conv_im2col_shapes(batch=8, image_hw=14, c_in=64, c_out=128, kernel_hw=3)
        conv = shapes["conv3x3"]
        assert conv.m == 8 * 14 * 14
        assert conv.n == 128
        assert conv.k == 64 * 9


class TestFactorizationShapes:
    def test_trailing_update_is_rank_panel(self):
        shapes = factorization_shapes(panel=128, trailing=2048)
        lu = shapes["lu_trailing_update"]
        assert lu.shape == (2048, 2048, 128)
        assert lu.dtype is FP64


class TestStrongScalingShapes:
    def test_fig8_scenarios_present(self):
        shapes = strong_scaling_shapes()
        assert shapes["fig8a_short_wide"].shape == (256, 3584, 8192)
        assert shapes["fig8b_square"].shape == (1024, 1024, 1024)
        assert shapes["fig8c_single_tile"].shape == (128, 128, 16384)
