"""Doc integrity: relative links resolve, the committed trace is valid.

The CI docs job runs only ``tests/docs``, so the committed example
trace's schema validity is asserted here as well as in ``tests/obs``
(where it is additionally compared against a fresh export).
"""

import json
import os
import re

import pytest

from repro.obs.export import validate_chrome_trace

REPO = os.path.abspath(os.path.join(os.path.dirname(__file__), "..", ".."))

DOCS = [
    "README.md",
    "EXPERIMENTS.md",
    "DESIGN.md",
    os.path.join("docs", "TRACING.md"),
    os.path.join("docs", "FAULTS.md"),
    os.path.join("docs", "HARDWARE.md"),
    os.path.join("docs", "CHECKPOINTING.md"),
    os.path.join("docs", "SERVING.md"),
    os.path.join("docs", "ADAPTIVE.md"),
]

# Repo paths the prose references in backticks (not markdown links).
_BACKTICK_PATH = re.compile(
    r"`((?:[A-Za-z0-9_.-]+/)*[A-Za-z0-9_.-]+\.(?:md|py|json|yml))`"
)


class TestRelativeLinks:
    @pytest.mark.parametrize("doc", DOCS)
    def test_markdown_links_resolve(self, doc):
        path = os.path.join(REPO, doc)
        with open(path) as fh:
            text = fh.read()
        base = os.path.dirname(path)
        broken = []
        for target in re.findall(r"\]\(([^)\s]+)\)", text):
            if target.startswith(("http://", "https://", "#", "mailto:")):
                continue
            if not os.path.exists(os.path.join(base, target.split("#")[0])):
                broken.append(target)
        assert not broken, "%s has broken links: %r" % (doc, broken)

    @pytest.mark.parametrize("doc", DOCS)
    def test_backticked_file_paths_resolve(self, doc):
        path = os.path.join(REPO, doc)
        with open(path) as fh:
            text = fh.read()
        broken = []
        for target in _BACKTICK_PATH.findall(text):
            if "*" in target or "{" in target or "/" not in target:
                continue  # bare filenames are often output examples
            # Paths are written repo-root-relative in all our docs.
            if not os.path.exists(os.path.join(REPO, target)):
                broken.append(target)
        assert not broken, "%s references missing files: %r" % (doc, broken)


class TestCommittedTrace:
    TRACE = os.path.join(REPO, "docs", "traces", "fig2_stream_k_g4.json")

    @pytest.mark.parametrize(
        "name",
        [
            "fig2_stream_k_g4.json",
            "stream_k_h100_sxm.json",
            "stream_k_v100_sxm2.json",
            "stream_k_rtx3090.json",
        ],
    )
    def test_exists_and_validates(self, name):
        # Freshness (committed == regenerated) is pinned per preset in
        # tests/gpu/test_golden_traces.py; the docs job checks schema.
        with open(os.path.join(REPO, "docs", "traces", name)) as fh:
            doc = json.load(fh)
        validate_chrome_trace(doc)

    def test_is_the_figure2_schedule(self):
        with open(self.TRACE) as fh:
            doc = json.load(fh)
        other = doc["otherData"]
        assert other["num_sm_slots"] == 4
        assert "cycle" in other["clock_domain"]
        # All seven segment kinds of the Stream-K protocol appear.
        kinds = {
            e["cat"] for e in doc["traceEvents"] if e.get("ph") == "X"
        }
        assert kinds == set(other["segment_colors"])
