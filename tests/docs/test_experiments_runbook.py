"""EXPERIMENTS.md is a runnable runbook.

Every fenced command in the document is exercised: ``python -m repro``
commands run in-process (with ``--out`` redirected to a temp file), and
``pytest benchmarks/...`` commands must reference benchmark modules that
exist.  Every ``benchmarks/artifacts/*.json`` path mentioned must point
at a committed artifact.
"""

import os
import re
import shlex

import pytest

from repro.cli import main
from repro.obs import counters, profiler

REPO = os.path.abspath(os.path.join(os.path.dirname(__file__), "..", ".."))
DOC = os.path.join(REPO, "EXPERIMENTS.md")


def _fenced_commands():
    with open(DOC) as fh:
        text = fh.read()
    commands = []
    for block in re.findall(r"```bash\n(.*?)```", text, re.DOTALL):
        for line in block.splitlines():
            line = line.strip()
            if line and not line.startswith("#"):
                commands.append(line)
    return commands


COMMANDS = _fenced_commands()
REPRO_COMMANDS = [c for c in COMMANDS if "python -m repro" in c]
PYTEST_COMMANDS = [c for c in COMMANDS if "pytest" in c.split()]


@pytest.fixture(autouse=True)
def _reset_obs_state():
    """The ``profile`` command enables profiling globally; contain it."""
    yield
    profiler.disable_profiling()
    profiler.reset_profile()
    counters.reset_counters()


class TestDocumentShape:
    def test_commands_were_extracted(self):
        assert len(REPRO_COMMANDS) >= 8
        assert len(PYTEST_COMMANDS) >= 15

    def test_every_artifact_path_exists(self):
        with open(DOC) as fh:
            text = fh.read()
        paths = set(re.findall(r"benchmarks/artifacts/[A-Za-z0-9_]+\.json", text))
        assert len(paths) >= 15
        missing = [p for p in paths if not os.path.exists(os.path.join(REPO, p))]
        assert not missing, "runbook references missing artifacts: %r" % missing


class TestBenchCommands:
    @pytest.mark.parametrize("command", PYTEST_COMMANDS)
    def test_referenced_bench_exists(self, command):
        tokens = [t for t in shlex.split(command) if "=" not in t]
        assert tokens[0] == "pytest"
        target = tokens[1]
        path = os.path.join(REPO, target)
        assert os.path.exists(path), (
            "runbook command %r references missing %s" % (command, target)
        )
        if target.endswith(".py"):
            assert os.path.basename(target).startswith("bench_")


class TestReproCommands:
    @pytest.mark.parametrize("command", REPRO_COMMANDS)
    def test_command_runs(self, command, tmp_path, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_PROFILE", raising=False)
        tokens = shlex.split(command)
        assert tokens[:3] == ["python", "-m", "repro"]
        argv = tokens[3:]
        if "--out" in argv:  # don't overwrite committed outputs from a test
            argv[argv.index("--out") + 1] = str(tmp_path / "out.json")
        assert main(argv) == 0, "runbook command failed: %r" % command
        assert capsys.readouterr().out.strip(), "command printed nothing"
