"""README reference tables stay in sync with the code.

Two contracts:

* every CLI subcommand registered in ``repro.cli`` has a row in README's
  subcommand table (and the table names no phantom commands);
* every ``REPRO_*`` environment variable read anywhere under ``src/`` or
  ``benchmarks/`` has a row in README's environment table (and vice
  versa).
"""

import argparse
import os
import re

import pytest

from repro.cli import build_parser

REPO = os.path.abspath(os.path.join(os.path.dirname(__file__), "..", ".."))


@pytest.fixture(scope="module")
def readme():
    with open(os.path.join(REPO, "README.md")) as fh:
        return fh.read()


def _cli_commands():
    parser = build_parser()
    sub = next(
        a for a in parser._actions if isinstance(a, argparse._SubParsersAction)
    )
    return sorted(sub.choices)


def _env_vars_in_code():
    found = set()
    roots = [os.path.join(REPO, "src"), os.path.join(REPO, "benchmarks")]
    for root in roots:
        for dirpath, _, files in os.walk(root):
            for name in files:
                if not name.endswith(".py"):
                    continue
                with open(os.path.join(dirpath, name)) as fh:
                    found.update(re.findall(r"REPRO_[A-Z_]+[A-Z]", fh.read()))
    return sorted(found)


class TestCliParity:
    def test_every_subcommand_documented(self, readme):
        commands = _cli_commands()
        assert commands, "no CLI subcommands found"
        for cmd in commands:
            assert "| `%s`" % cmd in readme, (
                "CLI subcommand %r missing from README's subcommand table" % cmd
            )

    def test_no_phantom_subcommands(self, readme):
        documented = re.findall(r"^\| `([a-z_]+)` +\|", readme, re.MULTILINE)
        commands = set(_cli_commands())
        phantom = [d for d in documented if d not in commands]
        assert not phantom, (
            "README documents subcommands the CLI does not register: %r"
            % phantom
        )


class TestEnvParity:
    def test_every_env_var_documented(self, readme):
        env_vars = _env_vars_in_code()
        assert "REPRO_PROFILE" in env_vars  # sanity: the scan works
        for var in env_vars:
            assert "| `%s`" % var in readme, (
                "environment variable %r read in code but missing from "
                "README's environment table" % var
            )

    def test_no_phantom_env_vars(self, readme):
        documented = re.findall(r"^\| `(REPRO_[A-Z_]+)`", readme, re.MULTILINE)
        assert documented, "README environment table not found"
        in_code = set(_env_vars_in_code())
        phantom = [d for d in documented if d not in in_code]
        assert not phantom, (
            "README documents env vars nothing reads: %r" % phantom
        )
