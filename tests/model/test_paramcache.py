"""Persistent calibration cache: hits, structural invalidation, atomicity."""

import dataclasses
import json
import os

import pytest

from repro.gemm import FP64, Blocking
from repro.gpu import HYPOTHETICAL_4SM
from repro.model import calibrate
from repro.model.paramcache import (
    CALIBRATION_CACHE_VERSION,
    calibrate_cached,
    clear_memory_cache,
    gpu_fingerprint,
    load_cached_params,
    store_params,
    wipe_calibration_cache,
)
from repro.obs.counters import get_counter, reset_counters

BLOCKING = Blocking(16, 16, 8)


@pytest.fixture(autouse=True)
def _fresh_memo():
    clear_memory_cache()
    yield
    clear_memory_cache()


class TestRoundTrip:
    def test_store_then_load(self, tmp_path):
        params = calibrate(HYPOTHETICAL_4SM, BLOCKING, FP64)
        path = store_params(params, HYPOTHETICAL_4SM, cache_dir=str(tmp_path))
        assert path is not None and os.path.isfile(path)
        loaded = load_cached_params(
            HYPOTHETICAL_4SM, BLOCKING, FP64, cache_dir=str(tmp_path)
        )
        assert loaded is not None
        assert (loaded.a, loaded.b, loaded.c, loaded.d) == (
            params.a, params.b, params.c, params.d,
        )

    def test_calibrate_cached_skips_recalibration(self, tmp_path):
        p1 = calibrate_cached(HYPOTHETICAL_4SM, BLOCKING, FP64, cache_dir=str(tmp_path))
        # Cold process simulation: clear the memo, keep the disk store.
        clear_memory_cache()
        p2 = calibrate_cached(HYPOTHETICAL_4SM, BLOCKING, FP64, cache_dir=str(tmp_path))
        assert (p1.a, p1.b, p1.c, p1.d) == (p2.a, p2.b, p2.c, p2.d)
        # Exactly one entry on disk.
        files = os.listdir(tmp_path / "calibration")
        assert len(files) == 1

    def test_equals_direct_calibration(self, tmp_path):
        cached = calibrate_cached(
            HYPOTHETICAL_4SM, BLOCKING, FP64, cache_dir=str(tmp_path)
        )
        direct = calibrate(HYPOTHETICAL_4SM, BLOCKING, FP64)
        assert (cached.a, cached.b, cached.c, cached.d) == (
            direct.a, direct.b, direct.c, direct.d,
        )


class TestInvalidation:
    def test_gpu_fingerprint_covers_every_field(self):
        fp = gpu_fingerprint(HYPOTHETICAL_4SM)
        changed = dataclasses.replace(HYPOTHETICAL_4SM, num_sms=5)
        assert gpu_fingerprint(changed) != fp
        renamed = dataclasses.replace(HYPOTHETICAL_4SM, name="other")
        assert gpu_fingerprint(renamed) != fp

    def test_stale_fingerprint_misses(self, tmp_path):
        params = calibrate(HYPOTHETICAL_4SM, BLOCKING, FP64)
        path = store_params(params, HYPOTHETICAL_4SM, cache_dir=str(tmp_path))
        doc = json.load(open(path))
        doc["gpu_fingerprint"] = "0" * 64
        json.dump(doc, open(path, "w"))
        assert load_cached_params(
            HYPOTHETICAL_4SM, BLOCKING, FP64, cache_dir=str(tmp_path)
        ) is None

    def test_stale_version_misses(self, tmp_path):
        params = calibrate(HYPOTHETICAL_4SM, BLOCKING, FP64)
        path = store_params(params, HYPOTHETICAL_4SM, cache_dir=str(tmp_path))
        doc = json.load(open(path))
        doc["version"] = CALIBRATION_CACHE_VERSION + 999
        json.dump(doc, open(path, "w"))
        assert load_cached_params(
            HYPOTHETICAL_4SM, BLOCKING, FP64, cache_dir=str(tmp_path)
        ) is None

    def test_corrupt_file_misses(self, tmp_path):
        params = calibrate(HYPOTHETICAL_4SM, BLOCKING, FP64)
        path = store_params(params, HYPOTHETICAL_4SM, cache_dir=str(tmp_path))
        with open(path, "w") as fh:
            fh.write("{not json")
        assert load_cached_params(
            HYPOTHETICAL_4SM, BLOCKING, FP64, cache_dir=str(tmp_path)
        ) is None
        # calibrate_cached degrades to recomputation, then overwrites.
        p = calibrate_cached(HYPOTHETICAL_4SM, BLOCKING, FP64, cache_dir=str(tmp_path))
        assert p is not None
        assert load_cached_params(
            HYPOTHETICAL_4SM, BLOCKING, FP64, cache_dir=str(tmp_path)
        ) is not None


class TestQuarantine:
    """Corrupt artifacts are renamed aside and counted, never re-parsed."""

    def _stored(self, tmp_path):
        params = calibrate(HYPOTHETICAL_4SM, BLOCKING, FP64)
        return store_params(params, HYPOTHETICAL_4SM, cache_dir=str(tmp_path))

    def test_unparsable_json_is_quarantined(self, tmp_path):
        reset_counters()
        path = self._stored(tmp_path)
        with open(path, "w") as fh:
            fh.write("{not json")
        assert load_cached_params(
            HYPOTHETICAL_4SM, BLOCKING, FP64, cache_dir=str(tmp_path)
        ) is None
        assert not os.path.exists(path)
        assert os.path.exists(path + ".corrupt")
        assert get_counter("paramcache.corrupt_quarantined") == 1
        # The quarantined file is never matched again: next lookup is a
        # clean miss, not another quarantine.
        assert load_cached_params(
            HYPOTHETICAL_4SM, BLOCKING, FP64, cache_dir=str(tmp_path)
        ) is None
        assert get_counter("paramcache.corrupt_quarantined") == 1

    def test_mistyped_fields_are_quarantined(self, tmp_path):
        reset_counters()
        path = self._stored(tmp_path)
        doc = json.load(open(path))
        del doc["a"]
        json.dump(doc, open(path, "w"))
        assert load_cached_params(
            HYPOTHETICAL_4SM, BLOCKING, FP64, cache_dir=str(tmp_path)
        ) is None
        assert os.path.exists(path + ".corrupt")
        assert get_counter("paramcache.corrupt_quarantined") == 1

    def test_stale_entry_is_not_quarantined(self, tmp_path):
        """Version/fingerprint mismatches are legitimate misses — the
        entry stays in place to be overwritten by the next store."""
        reset_counters()
        path = self._stored(tmp_path)
        doc = json.load(open(path))
        doc["version"] = CALIBRATION_CACHE_VERSION + 999
        json.dump(doc, open(path, "w"))
        assert load_cached_params(
            HYPOTHETICAL_4SM, BLOCKING, FP64, cache_dir=str(tmp_path)
        ) is None
        assert os.path.exists(path)
        assert not os.path.exists(path + ".corrupt")
        assert get_counter("paramcache.corrupt_quarantined") == 0

    def test_quarantine_then_recompute_and_overwrite(self, tmp_path):
        path = self._stored(tmp_path)
        with open(path, "w") as fh:
            fh.write("garbage")
        p = calibrate_cached(
            HYPOTHETICAL_4SM, BLOCKING, FP64, cache_dir=str(tmp_path)
        )
        assert p is not None
        # Recomputed and re-stored under the original name.
        assert os.path.exists(path)
        assert load_cached_params(
            HYPOTHETICAL_4SM, BLOCKING, FP64, cache_dir=str(tmp_path)
        ) is not None

    def test_wipe_removes_quarantined_files(self, tmp_path):
        path = self._stored(tmp_path)
        with open(path, "w") as fh:
            fh.write("garbage")
        load_cached_params(
            HYPOTHETICAL_4SM, BLOCKING, FP64, cache_dir=str(tmp_path)
        )
        assert wipe_calibration_cache(cache_dir=str(tmp_path)) == 1
        assert os.listdir(tmp_path / "calibration") == []


class TestHousekeeping:
    def test_wipe(self, tmp_path):
        params = calibrate(HYPOTHETICAL_4SM, BLOCKING, FP64)
        store_params(params, HYPOTHETICAL_4SM, cache_dir=str(tmp_path))
        assert wipe_calibration_cache(cache_dir=str(tmp_path)) == 1
        assert wipe_calibration_cache(cache_dir=str(tmp_path)) == 0

    def test_no_disk_env_disables_store(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_NO_DISK_CACHE", "1")
        calibrate_cached(HYPOTHETICAL_4SM, BLOCKING, FP64, cache_dir=str(tmp_path))
        assert not (tmp_path / "calibration").exists()

    def test_unwritable_dir_degrades_silently(self, tmp_path):
        target = tmp_path / "file-not-dir"
        target.write_text("occupied")
        # cache_dir points *into* a file: store fails, calibration still works
        p = calibrate_cached(
            HYPOTHETICAL_4SM, BLOCKING, FP64,
            cache_dir=str(target / "sub"),
        )
        assert p is not None

    def test_atomic_store_leaves_no_temp_files(self, tmp_path):
        params = calibrate(HYPOTHETICAL_4SM, BLOCKING, FP64)
        store_params(params, HYPOTHETICAL_4SM, cache_dir=str(tmp_path))
        leftovers = [
            f for f in os.listdir(tmp_path / "calibration") if f.endswith(".tmp")
        ]
        assert leftovers == []


class TestMultiBackendFingerprints:
    """Every registered preset must calibrate into its own cache slot."""

    def test_presets_have_pairwise_distinct_fingerprints(self):
        from repro.gpu.spec import GPU_PRESETS

        fps = {name: gpu_fingerprint(spec) for name, spec in GPU_PRESETS.items()}
        assert len(set(fps.values())) == len(fps), fps

    def test_each_preset_gets_its_own_cache_entry(self, tmp_path):
        from repro.gpu.spec import A100, H100_SXM, RTX3090

        paths = set()
        for gpu in (A100, H100_SXM, RTX3090):
            params = calibrate(gpu, BLOCKING, FP64)
            paths.add(store_params(params, gpu, cache_dir=str(tmp_path)))
        assert len(paths) == 3
        for gpu in (A100, H100_SXM, RTX3090):
            loaded = load_cached_params(gpu, BLOCKING, FP64, cache_dir=str(tmp_path))
            assert loaded == calibrate(gpu, BLOCKING, FP64)

    def test_custom_json_device_fingerprint_matches_original(self):
        from repro.gpu.spec import GpuSpec, RTX3090

        # JSON round trip is fingerprint-preserving: a custom device file
        # hits the same calibration entries as the in-process spec.
        assert gpu_fingerprint(GpuSpec.from_json(RTX3090.to_json())) == (
            gpu_fingerprint(RTX3090)
        )
