"""Analytical model formula tests (Appendix A.1)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.gemm import FP16_FP32, Blocking, GemmProblem, TileGrid
from repro.model import StreamKModelParams, fixup_peers, iters_per_cta, predicted_time


def params(a=100.0, b=50.0, c=10.0, d=40.0, blocking=(128, 128, 32)):
    return StreamKModelParams(
        a=a, b=b, c=c, d=d, blocking=blocking, dtype_name="fp16_fp32", gpu_name="a100"
    )


class TestFormulas:
    def test_iters_per_cta_is_ceil(self):
        assert iters_per_cta(100, 7) == 15
        assert iters_per_cta(100, np.array([1, 4, 100, 200])).tolist() == [
            100, 25, 1, 1,
        ]

    def test_fixup_peers_is_ceil(self):
        assert fixup_peers(32, np.array([32, 19, 8, 1])).tolist() == [1, 2, 4, 32]

    def test_paper_example_fig8a(self):
        """256x3584x8192: 56 tiles, 256 iters/tile; at g=108 the paper
        reports 132/133 iterations per CTA."""
        grid = TileGrid(GemmProblem(256, 3584, 8192, dtype=FP16_FP32), Blocking(128, 128, 32))
        assert grid.num_tiles == 56
        assert grid.iters_per_tile == 256
        assert iters_per_cta(grid.total_iters, 108) == 133

    def test_nonpositive_grid_rejected(self):
        with pytest.raises(ConfigurationError):
            iters_per_cta(100, 0)


class TestPredictedTime:
    def test_no_split_has_no_fixup_terms(self):
        grid = TileGrid(GemmProblem(1024, 1024, 1024, dtype=FP16_FP32), Blocking(128, 128, 32))
        p = params()
        # g = t: one tile per CTA -> peers == 1 -> time = a + c*ipt
        t = predicted_time(grid, grid.num_tiles, p)
        assert float(t) == pytest.approx(p.a + p.c * grid.iters_per_tile)

    def test_split_adds_b_and_d(self):
        grid = TileGrid(GemmProblem(128, 128, 1024, dtype=FP16_FP32), Blocking(128, 128, 32))
        p = params()
        # 1 tile, 32 iters; g=2 -> 16 iters/cta, 2 peers.
        t = predicted_time(grid, 2, p)
        assert float(t) == pytest.approx(p.a + p.b + p.c * 16 + p.d)

    def test_vectorized_over_grid_sizes(self):
        grid = TileGrid(GemmProblem(256, 256, 2048, dtype=FP16_FP32), Blocking(128, 128, 32))
        g = np.arange(1, 109)
        t = predicted_time(grid, g, params())
        assert t.shape == (108,)
        assert (t > 0).all()

    def test_blocking_mismatch_rejected(self):
        grid = TileGrid(GemmProblem(256, 256, 2048, dtype=FP16_FP32), Blocking(64, 64, 64))
        with pytest.raises(ConfigurationError):
            predicted_time(grid, 8, params())


class TestParamValidation:
    def test_negative_constants_rejected(self):
        with pytest.raises(ConfigurationError):
            params(a=-1.0)

    def test_nonpositive_c_rejected(self):
        with pytest.raises(ConfigurationError):
            params(c=0.0)
