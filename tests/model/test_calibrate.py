"""Calibration tests: the fit must recover the simulator's ground truth."""

import pytest

from repro.errors import CalibrationError
from repro.gemm import FP16_FP32, FP64, Blocking
from repro.gpu import A100, HYPOTHETICAL_4SM, KernelCostModel
from repro.model import calibrate


class TestRecovery:
    @pytest.mark.parametrize(
        "gpu,blocking,dtype",
        [
            (A100, Blocking(128, 128, 32), FP16_FP32),
            (A100, Blocking(64, 64, 16), FP64),
            (HYPOTHETICAL_4SM, Blocking(128, 128, 32), FP16_FP32),
            (A100, Blocking(64, 128, 32), FP16_FP32),  # ensemble member
        ],
    )
    def test_recovers_cost_model_constants(self, gpu, blocking, dtype):
        params = calibrate(gpu, blocking, dtype)
        truth = KernelCostModel(gpu=gpu, blocking=blocking, dtype=dtype).abcd()
        assert params.a == pytest.approx(truth[0], rel=1e-9)
        assert params.b == pytest.approx(truth[1], rel=1e-9)
        assert params.c == pytest.approx(truth[2], rel=1e-9)
        assert params.d == pytest.approx(truth[3], rel=1e-9)

    def test_params_tagged_with_configuration(self):
        params = calibrate(A100, Blocking(128, 128, 32), FP16_FP32)
        assert params.blocking == (128, 128, 32)
        assert params.dtype_name == "fp16_fp32"
        assert params.gpu_name == "a100"


class TestFailureModes:
    def test_single_depth_rejected(self):
        with pytest.raises(CalibrationError, match="two depths"):
            calibrate(A100, Blocking(128, 128, 32), FP16_FP32, depths=(8,))

    def test_no_splits_rejected(self):
        with pytest.raises(CalibrationError):
            calibrate(A100, Blocking(128, 128, 32), FP16_FP32, splits=())

    def test_split_of_one_rejected(self):
        with pytest.raises(CalibrationError):
            calibrate(A100, Blocking(128, 128, 32), FP16_FP32, splits=(1, 2))

    def test_splits_beyond_residency_rejected(self):
        with pytest.raises(CalibrationError, match="co-residency"):
            calibrate(
                HYPOTHETICAL_4SM, Blocking(128, 128, 32), FP16_FP32,
                splits=(8, 16),
            )

    def test_default_splits_usable_on_small_gpu(self):
        params = calibrate(HYPOTHETICAL_4SM, Blocking(128, 128, 32), FP16_FP32)
        truth = KernelCostModel(
            gpu=HYPOTHETICAL_4SM, blocking=Blocking(128, 128, 32), dtype=FP16_FP32
        ).abcd()
        assert params.d == pytest.approx(truth[3], rel=1e-9)
