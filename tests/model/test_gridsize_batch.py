"""Batched grid-size selection must be element-for-element equal to the
per-problem Appendix A.1 sweep (same formula, same smallest-g tie rule)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.gemm import FP16_FP32, FP64, Blocking, GemmProblem, TileGrid
from repro.gpu import A100, HYPOTHETICAL_4SM
from repro.model import calibrate, select_grid_size, select_grid_sizes_batch


@pytest.fixture(scope="module")
def params_a100():
    return calibrate(A100, Blocking(128, 128, 32), FP16_FP32)


@pytest.fixture(scope="module")
def params_4sm():
    return calibrate(HYPOTHETICAL_4SM, Blocking(16, 16, 8), FP64)


@pytest.fixture(scope="module")
def params_a100_small():
    # Same blocking as the synthetic reference grids in _scalar_sweep.
    return calibrate(A100, Blocking(16, 16, 8), FP64)


def _scalar_sweep(total, ipt, params, max_grid):
    """Per-problem reference: select_grid_size over synthetic TileGrids."""
    out = np.empty(len(total), dtype=np.int64)
    for i, (tot, k_iters) in enumerate(zip(total, ipt)):
        t = tot // k_iters
        # Build an (t x 1) tile grid with the requested iters/tile.
        problem = GemmProblem(int(t) * 16, 16, int(k_iters) * 8, dtype=FP64)
        grid = TileGrid(problem, Blocking(16, 16, 8))
        assert grid.total_iters == tot and grid.iters_per_tile == k_iters
        out[i] = select_grid_size(grid, params, max_grid).g
    return out


class TestBatchEqualsScalar:
    def test_random_regime_b_corpus(self, params_a100_small):
        """Random (t < p)-style problems on the A100 bound."""
        rng = np.random.default_rng(0xA11)
        t = rng.integers(1, 108, size=300)
        ipt = rng.integers(1, 600, size=300)
        total = t * ipt
        batch = select_grid_sizes_batch(
            total, ipt, params_a100_small, A100.total_cta_slots
        )
        scalar = _scalar_sweep(total, ipt, params_a100_small, A100.total_cta_slots)
        np.testing.assert_array_equal(batch, scalar)

    @settings(max_examples=30, deadline=None)
    @given(
        t=st.integers(1, 16),
        ipt=st.integers(1, 64),
        max_grid=st.integers(1, 16),
    )
    def test_single_problem_property(self, params_4sm, t, ipt, max_grid):
        total = np.array([t * ipt], dtype=np.int64)
        ipt_arr = np.array([ipt], dtype=np.int64)
        batch = select_grid_sizes_batch(total, ipt_arr, params_4sm, max_grid)
        scalar = _scalar_sweep(total, ipt_arr, params_4sm, max_grid)
        assert batch[0] == scalar[0]

    def test_paper_fig8_optima_preserved(self, params_a100):
        """The batch path reproduces the paper's Figure 8 selections."""
        cases = [
            (256, 3584, 8192, 108),
            (1024, 1024, 1024, 64),
            (128, 128, 16384, 8),
        ]
        grids = [
            TileGrid(GemmProblem(m, n, k, dtype=FP16_FP32), Blocking(128, 128, 32))
            for m, n, k, _ in cases
        ]
        total = np.array([g.total_iters for g in grids], dtype=np.int64)
        ipt = np.array([g.iters_per_tile for g in grids], dtype=np.int64)
        got = select_grid_sizes_batch(total, ipt, params_a100, A100.num_sms)
        np.testing.assert_array_equal(
            got, np.array([g for *_, g in cases], dtype=np.int64)
        )

    def test_chunking_invariant(self, params_a100):
        """Results are identical for any row_chunk (memory knob only)."""
        rng = np.random.default_rng(3)
        t = rng.integers(1, 108, size=97)
        ipt = rng.integers(1, 300, size=97)
        total = t * ipt
        ref = select_grid_sizes_batch(total, ipt, params_a100, 108)
        for chunk in (1, 7, 96, 97, 4096):
            got = select_grid_sizes_batch(total, ipt, params_a100, 108, row_chunk=chunk)
            np.testing.assert_array_equal(got, ref)


class TestValidation:
    def test_empty_input(self, params_a100):
        out = select_grid_sizes_batch(
            np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64), params_a100, 108
        )
        assert out.shape == (0,) and out.dtype == np.int64

    def test_rejects_nonpositive(self, params_a100):
        with pytest.raises(ConfigurationError):
            select_grid_sizes_batch(
                np.array([0]), np.array([1]), params_a100, 108
            )
        with pytest.raises(ConfigurationError):
            select_grid_sizes_batch(
                np.array([4]), np.array([2]), params_a100, 0
            )

    def test_rejects_shape_mismatch(self, params_a100):
        with pytest.raises(ConfigurationError):
            select_grid_sizes_batch(
                np.array([4, 8]), np.array([2]), params_a100, 108
            )
