"""Grid-size selection tests — must hit the paper's Figure 8 optima."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.gemm import FP16_FP32, Blocking, GemmProblem, TileGrid
from repro.gpu import A100
from repro.model import calibrate, select_grid_size, sweep_grid_sizes


@pytest.fixture(scope="module")
def params():
    return calibrate(A100, Blocking(128, 128, 32), FP16_FP32)


class TestFigure8:
    @pytest.mark.parametrize(
        "m,n,k,expected_g",
        [
            (256, 3584, 8192, 108),  # Fig 8a: maximal parallelism
            (1024, 1024, 1024, 64),  # Fig 8b: no splitting (g = t)
            (128, 128, 16384, 8),    # Fig 8c: partial strong scaling
        ],
    )
    def test_paper_optima(self, params, m, n, k, expected_g):
        grid = TileGrid(GemmProblem(m, n, k, dtype=FP16_FP32), Blocking(128, 128, 32))
        decision = select_grid_size(grid, params, A100.num_sms)
        assert decision.g == expected_g

    def test_fig8b_dip_at_tile_count(self, params):
        """The Figure 8b curve has its global minimum exactly at g = 64."""
        grid = TileGrid(GemmProblem(1024, 1024, 1024, dtype=FP16_FP32), Blocking(128, 128, 32))
        candidates, times = sweep_grid_sizes(grid, params, A100.num_sms)
        assert candidates[np.argmin(times)] == 64
        # and g=108 is strictly worse than g=64
        assert times[107] > times[63]

    def test_fig8c_serial_reduction_penalty(self, params):
        """Past the optimum, adding CTAs makes the modeled time worse
        (the per-peer serial reduction grows)."""
        grid = TileGrid(GemmProblem(128, 128, 16384, dtype=FP16_FP32), Blocking(128, 128, 32))
        candidates, times = sweep_grid_sizes(grid, params, A100.num_sms)
        t = {int(g): float(v) for g, v in zip(candidates, times)}
        assert t[8] < t[32] < t[64] < t[108]


class TestMechanics:
    def test_candidates_clamped_to_total_iters(self, params):
        grid = TileGrid(GemmProblem(128, 128, 64, dtype=FP16_FP32), Blocking(128, 128, 32))
        decision = select_grid_size(grid, params, A100.num_sms)
        assert decision.candidates.max() == grid.total_iters  # 2 iterations

    def test_tie_resolves_to_smallest_g(self, params):
        grid = TileGrid(GemmProblem(128, 128, 64, dtype=FP16_FP32), Blocking(128, 128, 32))
        decision = select_grid_size(grid, params, A100.num_sms)
        ties = decision.candidates[
            decision.predictions == decision.predicted_cycles
        ]
        assert decision.g == int(ties.min())

    def test_prediction_matches_curve(self, params):
        grid = TileGrid(GemmProblem(512, 512, 4096, dtype=FP16_FP32), Blocking(128, 128, 32))
        decision = select_grid_size(grid, params, A100.num_sms)
        idx = int(np.flatnonzero(decision.candidates == decision.g)[0])
        assert decision.predictions[idx] == decision.predicted_cycles

    def test_invalid_max_grid_rejected(self, params):
        grid = TileGrid(GemmProblem(512, 512, 4096, dtype=FP16_FP32), Blocking(128, 128, 32))
        with pytest.raises(ConfigurationError):
            sweep_grid_sizes(grid, params, 0)
