"""PlanService: correctness under concurrency, coalescing, clean shutdown."""

import threading

import pytest

from repro.errors import ConfigurationError
from repro.gpu.spec import resolve_gpu
from repro.obs.counters import get_counter
from repro.plan import PlanService, ServeConfig, plan_query


def _service(**overrides):
    defaults = dict(persist=False, warm=False, batch_window_s=0.002)
    defaults.update(overrides)
    return PlanService(ServeConfig(**defaults))


class TestCorrectness:
    def test_served_plan_equals_cold_query(self):
        with _service() as svc:
            served = svc.submit(640, 384, 96, dtype="fp64", gpu="hypothetical_4sm")
            cold = plan_query(
                640, 384, 96, "fp64", resolve_gpu("hypothetical_4sm")
            )
            assert served == cold
            assert served.provenance == "model"

    def test_repeat_is_cache_hit(self):
        with _service() as svc:
            first = svc.submit(4096, 4096, 4096)
            again = svc.submit(4096, 4096, 4096)
            assert again == first
            assert again.provenance == "cache:hot"

    def test_mixed_bindings_do_not_cross_pollinate(self):
        with _service() as svc:
            a = svc.submit(512, 512, 512, dtype="fp16_fp32", gpu="a100")
            b = svc.submit(512, 512, 512, dtype="fp16_fp32", gpu="h100_sxm")
            assert a.gpu_fingerprint != b.gpu_fingerprint
            assert svc.submit(512, 512, 512, gpu="a100") == a
            assert svc.submit(512, 512, 512, gpu="h100_sxm") == b

    def test_rejects_nonpositive_shape(self):
        with _service() as svc:
            with pytest.raises(ConfigurationError):
                svc.submit(0, 128, 128)


class TestMicroBatching:
    def test_concurrent_misses_coalesce_into_few_batches(self):
        """24 distinct shapes submitted concurrently must ride far fewer
        than 24 plan_batch calls — the micro-batching window at work."""
        shapes = [(256 + 16 * i, 384, 512 + 32 * i) for i in range(24)]
        batches0 = get_counter("serve.batches")
        with _service(batch_window_s=0.05) as svc:
            results = {}
            errors = []

            def worker(shape):
                try:
                    results[shape] = svc.submit(*shape)
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)

            threads = [
                threading.Thread(target=worker, args=(s,)) for s in shapes
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert not errors
        batches = get_counter("serve.batches") - batches0
        assert 1 <= batches <= 6  # 24 queries, a handful of batches
        gpu = resolve_gpu("a100")
        for shape, plan in results.items():
            assert plan == plan_query(*shape, "fp16_fp32", gpu)

    def test_duplicate_inflight_queries_share_one_computation(self):
        shape = (1792, 896, 2048)
        uniq0 = get_counter("serve.unique_shapes")
        with _service(batch_window_s=0.05) as svc:
            plans = []
            threads = [
                threading.Thread(
                    target=lambda: plans.append(svc.submit(*shape))
                )
                for _ in range(8)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert len(set(plans)) == 1
        # All 8 waiters resolved, but the planner saw the shape once per
        # batch it rode in (typically exactly once).
        assert get_counter("serve.unique_shapes") - uniq0 <= 2

    def test_stats_report_shape(self):
        with _service() as svc:
            svc.submit(512, 512, 512)
            svc.submit(512, 512, 512)
            stats = svc.stats()
        assert stats["requests"] == 2
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["hit_rate"] == 0.5
        assert stats["batches"] >= 1
        assert stats["miss_p99_us"] > 0
        assert stats["bindings"] == ["fp16_fp32@a100"]


class TestShutdown:
    def test_submit_after_close_raises(self):
        svc = _service()
        svc.submit(256, 256, 256)
        svc.close()
        with pytest.raises(ConfigurationError):
            svc.submit(256, 256, 256)

    def test_close_is_idempotent(self):
        svc = _service()
        svc.close()
        svc.close()

    def test_close_flushes_persistent_shard(self, tmp_path):
        svc = PlanService(
            ServeConfig(warm=False, persist=True, cache_dir=str(tmp_path))
        )
        plan = svc.submit(640, 384, 96)
        svc.close()
        from repro.plan import PlanCache

        reloaded = PlanCache(
            resolve_gpu("a100"), "fp16_fp32", cache_dir=str(tmp_path)
        )
        assert reloaded.get(640, 384, 96) == plan
