"""Plan-cache correctness: cached == cold, bitwise; stale == miss.

The differential suite the serving contract rests on: a plan served from
either cache tier must be bitwise-identical to a cold ``plan_query``
across every registered GPU preset, and any change to the GPU
fingerprint or the planning-engine version must invalidate the cache
rather than serve a stale plan.
"""

import dataclasses
import json
import os

from repro.corpus.generator import CorpusSpec, generate_corpus
from repro.gemm.dtypes import FP16_FP32
from repro.gpu.spec import available_gpus, resolve_gpu
from repro.obs.counters import get_counter
from repro.plan import PlanCache, plan_query, wipe_plan_cache

SHAPES = generate_corpus(CorpusSpec(size=24, seed=11))


def _fields(plan):
    """Every field that participates in equality (excludes provenance)."""
    return tuple(
        getattr(plan, f.name)
        for f in dataclasses.fields(plan)
        if f.compare
    )


class TestDifferential:
    def test_cached_plans_bitwise_identical_across_all_presets(self, tmp_path):
        """Cold query -> cache miss fill -> hot hit -> disk hit: all four
        must produce identical plans on every registered preset."""
        for gpu_name in available_gpus():
            gpu = resolve_gpu(gpu_name)
            cache_dir = str(tmp_path / gpu_name)
            cache = PlanCache(gpu, FP16_FP32, cache_dir=cache_dir)
            for m, n, k in SHAPES:
                m, n, k = int(m), int(n), int(k)
                cold = plan_query(m, n, k, FP16_FP32, gpu)
                filled = cache.plan_or_compute(m, n, k)
                hot = cache.plan_or_compute(m, n, k)
                assert hot.provenance == "cache:hot"
                # Dataclass equality covers every field bit-for-bit
                # except provenance; compare the tuples too so a future
                # field added without compare= shows up here.
                assert _fields(cold) == _fields(filled) == _fields(hot)
            assert cache.flush() is not None
            # Fresh instance: the same plans must come back from disk.
            reloaded = PlanCache(gpu, FP16_FP32, cache_dir=cache_dir)
            for m, n, k in SHAPES:
                m, n, k = int(m), int(n), int(k)
                from_disk = reloaded.get(m, n, k)
                assert from_disk is not None
                assert from_disk.provenance == "cache:disk"
                assert _fields(from_disk) == _fields(
                    plan_query(m, n, k, FP16_FP32, gpu)
                )

    def test_hit_and_miss_counters(self, tmp_path):
        cache = PlanCache(
            resolve_gpu("a100"), FP16_FP32, cache_dir=str(tmp_path)
        )
        miss0 = get_counter("plancache.miss")
        hit0 = get_counter("plancache.hot_hit")
        cache.plan_or_compute(256, 256, 256)
        cache.plan_or_compute(256, 256, 256)
        assert get_counter("plancache.miss") == miss0 + 1
        assert get_counter("plancache.hot_hit") == hit0 + 1


class TestInvalidation:
    def test_gpu_fingerprint_change_invalidates(self, tmp_path):
        """Editing any GpuSpec field re-keys the cache: the old shard is
        unreachable and the altered GPU's plans are computed fresh."""
        gpu = resolve_gpu("hypothetical_4sm")
        cache = PlanCache(gpu, FP16_FP32, cache_dir=str(tmp_path))
        cache.plan_or_compute(640, 384, 96)
        assert cache.flush() is not None

        widened = gpu.with_sms(6)
        recache = PlanCache(widened, FP16_FP32, cache_dir=str(tmp_path))
        assert recache.fingerprint != cache.fingerprint
        assert recache.shard_path() != cache.shard_path()
        assert recache.get(640, 384, 96) is None  # never served stale
        fresh = recache.plan_or_compute(640, 384, 96)
        assert _fields(fresh) == _fields(
            plan_query(640, 384, 96, FP16_FP32, widened)
        )

    def test_engine_version_bump_invalidates(self, tmp_path, monkeypatch):
        gpu = resolve_gpu("a100")
        cache = PlanCache(gpu, FP16_FP32, cache_dir=str(tmp_path))
        stale = cache.plan_or_compute(512, 512, 4096)
        path_v1 = cache.shard_path()
        assert cache.flush() == path_v1

        monkeypatch.setattr("repro.plan.core.PLAN_ENGINE_VERSION", 99)
        bumped = PlanCache(gpu, FP16_FP32, cache_dir=str(tmp_path))
        assert bumped.shard_path() != path_v1
        assert bumped.get(512, 512, 4096) is None  # never served stale
        fresh = bumped.plan_or_compute(512, 512, 4096)
        assert fresh.engine_version == 99
        # A stale-engine plan is refused on insert, not silently stored.
        bumped.put(stale)
        assert bumped.get(stale.m, stale.n, stale.k).engine_version == 99

    def test_header_mismatch_is_clean_miss_not_crash(self, tmp_path):
        """A shard whose header lies about its fingerprint is ignored."""
        gpu = resolve_gpu("a100")
        cache = PlanCache(gpu, FP16_FP32, cache_dir=str(tmp_path))
        cache.plan_or_compute(256, 256, 256)
        path = cache.flush()
        doc = json.load(open(path))
        doc["gpu_fingerprint"] = "0" * 64
        with open(path, "w") as fh:
            json.dump(doc, fh)
        reloaded = PlanCache(gpu, FP16_FP32, cache_dir=str(tmp_path))
        assert reloaded.get(256, 256, 256) is None

    def test_corrupt_shard_quarantined(self, tmp_path):
        gpu = resolve_gpu("a100")
        cache = PlanCache(gpu, FP16_FP32, cache_dir=str(tmp_path))
        cache.plan_or_compute(256, 256, 256)
        path = cache.flush()
        with open(path, "w") as fh:
            fh.write("{not json")
        before = get_counter("plancache.corrupt_quarantined")
        reloaded = PlanCache(gpu, FP16_FP32, cache_dir=str(tmp_path))
        assert reloaded.get(256, 256, 256) is None
        assert os.path.exists(path + ".corrupt")
        assert get_counter("plancache.corrupt_quarantined") == before + 1


class TestStorageDiscipline:
    def test_no_disk_cache_env_disables_persistence(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_NO_DISK_CACHE", "1")
        gpu = resolve_gpu("a100")
        cache = PlanCache(gpu, FP16_FP32, cache_dir=str(tmp_path))
        cache.plan_or_compute(256, 256, 256)
        assert cache.flush() is None
        assert not os.path.exists(cache.shard_path())

    def test_lru_eviction_bounds_hot_tier(self, tmp_path):
        gpu = resolve_gpu("a100")
        cache = PlanCache(
            gpu, FP16_FP32, capacity=8, cache_dir=str(tmp_path), persist=False
        )
        for m, n, k in SHAPES:
            cache.plan_or_compute(int(m), int(n), int(k))
        assert len(cache) == 8

    def test_lru_exactly_at_capacity_evicts_nothing(self, tmp_path):
        gpu = resolve_gpu("a100")
        cache = PlanCache(
            gpu, FP16_FP32, capacity=4, cache_dir=str(tmp_path), persist=False
        )
        before = get_counter("plancache.evicted")
        shapes = [(64 * i, 64, 64) for i in range(1, 5)]
        for m, n, k in shapes:
            cache.plan_or_compute(m, n, k)
        assert len(cache) == 4
        assert get_counter("plancache.evicted") == before
        for m, n, k in shapes:  # every resident entry still answers
            assert cache.get(m, n, k) is not None

    def test_lru_capacity_plus_one_evicts_exactly_the_oldest(self, tmp_path):
        gpu = resolve_gpu("a100")
        cache = PlanCache(
            gpu, FP16_FP32, capacity=4, cache_dir=str(tmp_path), persist=False
        )
        before = get_counter("plancache.evicted")
        shapes = [(64 * i, 64, 64) for i in range(1, 6)]
        for m, n, k in shapes:
            cache.plan_or_compute(m, n, k)
        assert len(cache) == 4
        assert get_counter("plancache.evicted") == before + 1
        assert cache.get(*shapes[0]) is None  # the oldest, and only it
        for m, n, k in shapes[1:]:
            assert cache.get(m, n, k) is not None

    def test_lru_get_promotes_against_eviction(self, tmp_path):
        gpu = resolve_gpu("a100")
        cache = PlanCache(
            gpu, FP16_FP32, capacity=4, cache_dir=str(tmp_path), persist=False
        )
        shapes = [(64 * i, 64, 64) for i in range(1, 5)]
        for m, n, k in shapes:
            cache.plan_or_compute(m, n, k)
        assert cache.get(*shapes[0]) is not None  # touch: now MRU
        cache.plan_or_compute(320, 64, 64)  # evicts shapes[1], not [0]
        assert cache.get(*shapes[0]) is not None
        assert cache.get(*shapes[1]) is None
        for m, n, k in shapes[2:]:
            assert cache.get(m, n, k) is not None

    def test_lru_reinsert_of_resident_key_does_not_evict(self, tmp_path):
        gpu = resolve_gpu("a100")
        cache = PlanCache(
            gpu, FP16_FP32, capacity=4, cache_dir=str(tmp_path), persist=False
        )
        shapes = [(64 * i, 64, 64) for i in range(1, 5)]
        for m, n, k in shapes:
            cache.plan_or_compute(m, n, k)
        before = get_counter("plancache.evicted")
        cache.put(plan_query(*shapes[0], FP16_FP32, gpu))  # refresh resident
        assert len(cache) == 4
        assert get_counter("plancache.evicted") == before
        for m, n, k in shapes:
            assert cache.get(m, n, k) is not None

    def test_wipe_plan_cache(self, tmp_path):
        gpu = resolve_gpu("a100")
        cache = PlanCache(gpu, FP16_FP32, cache_dir=str(tmp_path))
        cache.plan_or_compute(256, 256, 256)
        cache.flush()
        assert wipe_plan_cache(str(tmp_path)) == 1
        assert not os.path.exists(cache.shard_path())

    def test_foreign_plans_refused(self, tmp_path):
        """A plan computed for one GPU can never pollute another's cache."""
        a100 = resolve_gpu("a100")
        h100 = resolve_gpu("h100_sxm")
        cache = PlanCache(a100, FP16_FP32, cache_dir=str(tmp_path))
        foreign = plan_query(256, 256, 256, FP16_FP32, h100)
        cache.put(foreign)
        assert cache.get(256, 256, 256) is None
