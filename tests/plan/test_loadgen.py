"""Zipf load generator: deterministic traces, faithful reports."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.plan import (
    LoadgenConfig,
    PlanServer,
    PlanService,
    ServeConfig,
    run_loadgen,
    zipf_trace,
)


class TestTrace:
    def test_trace_is_deterministic(self):
        cfg = LoadgenConfig(requests=500, universe=64, seed=3)
        assert np.array_equal(zipf_trace(cfg), zipf_trace(cfg))

    def test_seed_changes_trace(self):
        a = zipf_trace(LoadgenConfig(requests=500, universe=64, seed=3))
        b = zipf_trace(LoadgenConfig(requests=500, universe=64, seed=4))
        assert not np.array_equal(a, b)

    def test_zipf_skew_concentrates_on_hot_ranks(self):
        cfg = LoadgenConfig(requests=4000, universe=100, zipf_s=1.1, seed=0)
        trace = zipf_trace(cfg)
        universe, counts = np.unique(trace, axis=0, return_counts=True)
        # The hottest shape must dominate a uniform draw's share.
        assert counts.max() > 5 * cfg.requests / cfg.universe
        assert trace.shape == (4000, 3)

    def test_rejects_bad_knobs(self):
        with pytest.raises(ConfigurationError):
            LoadgenConfig(requests=0)
        with pytest.raises(ConfigurationError):
            LoadgenConfig(zipf_s=-1.0)


class TestInProcess:
    def test_report_accounts_for_every_request(self):
        report = run_loadgen(
            LoadgenConfig(requests=300, universe=16, clients=4, seed=1),
            serve_config=ServeConfig(persist=False, warm=False),
        )
        assert report["mode"] == "in-process"
        assert report["completed"] == 300 and report["failed"] == 0
        assert report["hits"] + report["misses"] == 300
        # 16 distinct shapes, 300 requests: overwhelmingly cache hits.
        assert report["hit_rate"] > 0.9
        assert report["qps"] > 0
        assert report["hit_p99_us"] > 0 and report["miss_p99_us"] > 0

    def test_external_service_left_open(self):
        svc = PlanService(ServeConfig(persist=False, warm=False))
        run_loadgen(
            LoadgenConfig(requests=50, universe=8, clients=2), service=svc
        )
        svc.submit(256, 256, 256)  # still usable
        svc.close()


class TestSocketMode:
    def test_socket_replay_matches_contract(self):
        service = PlanService(ServeConfig(persist=False, warm=False))
        server = PlanServer(service, port=0).start()
        try:
            report = run_loadgen(
                LoadgenConfig(requests=200, universe=16, clients=3, seed=2),
                connect=("127.0.0.1", server.port),
            )
        finally:
            server.stop()
        assert report["mode"] == "socket"
        assert report["completed"] == 200 and report["failed"] == 0
        assert report["hits"] + report["misses"] == 200
        assert report["hit_rate"] > 0.8
