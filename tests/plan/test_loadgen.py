"""Zipf load generator: deterministic traces, faithful reports."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.plan import (
    LoadgenConfig,
    PlanServer,
    PlanService,
    ServeConfig,
    run_loadgen,
    zipf_trace,
)


class TestTrace:
    def test_trace_is_deterministic(self):
        cfg = LoadgenConfig(requests=500, universe=64, seed=3)
        assert np.array_equal(zipf_trace(cfg), zipf_trace(cfg))

    def test_seed_changes_trace(self):
        a = zipf_trace(LoadgenConfig(requests=500, universe=64, seed=3))
        b = zipf_trace(LoadgenConfig(requests=500, universe=64, seed=4))
        assert not np.array_equal(a, b)

    def test_zipf_skew_concentrates_on_hot_ranks(self):
        cfg = LoadgenConfig(requests=4000, universe=100, zipf_s=1.1, seed=0)
        trace = zipf_trace(cfg)
        universe, counts = np.unique(trace, axis=0, return_counts=True)
        # The hottest shape must dominate a uniform draw's share.
        assert counts.max() > 5 * cfg.requests / cfg.universe
        assert trace.shape == (4000, 3)

    def test_rejects_bad_knobs(self):
        with pytest.raises(ConfigurationError):
            LoadgenConfig(requests=0)
        with pytest.raises(ConfigurationError):
            LoadgenConfig(zipf_s=-1.0)

    def test_clients_do_not_affect_the_trace(self):
        """--clients 1 vs --clients 4 replay byte-identical traces.

        Client count only shards the trace across threads; the request
        *sequence* is a pure function of (requests, universe, zipf_s,
        seed) — the replay contract behind every committed benchmark.
        """
        base = dict(requests=600, universe=64, zipf_s=1.1, seed=7)
        one = zipf_trace(LoadgenConfig(clients=1, **base))
        four = zipf_trace(LoadgenConfig(clients=4, **base))
        assert one.tobytes() == four.tobytes()


def _chi2_critical(df: int, z: float = 3.0902) -> float:
    """Chi-squared critical value via the Wilson-Hilferty cube
    approximation (keeps the test scipy-free); z=3.0902 is the normal
    99.9th percentile, i.e. alpha = 0.001."""
    h = 2.0 / (9.0 * df)
    return df * (1.0 - h + z * np.sqrt(h)) ** 3


def _zipf_buckets(cfg: LoadgenConfig, min_expected: float = 5.0):
    """(observed, expected) request counts per bucket for one trace.

    Universe rows are grouped by value (the corpus can draw duplicate
    shapes, whose rank masses merge), then low-expectation buckets are
    pooled into a tail so every chi-squared cell has expected >= 5.
    """
    from repro.corpus.generator import CorpusSpec, generate_corpus

    trace = zipf_trace(cfg)
    universe = generate_corpus(CorpusSpec(size=cfg.universe, seed=cfg.seed))
    ranks = np.arange(1, cfg.universe + 1, dtype=np.float64)
    probs = ranks ** (-cfg.zipf_s)
    probs /= probs.sum()

    groups: "dict[tuple, float]" = {}
    for i, row in enumerate(universe):
        key = tuple(int(v) for v in row)
        groups[key] = groups.get(key, 0.0) + probs[i]
    observed_by_key: "dict[tuple, int]" = {k: 0 for k in groups}
    for row in trace:
        observed_by_key[tuple(int(v) for v in row)] += 1

    observed, expected = [], []
    tail_obs, tail_exp = 0.0, 0.0
    for key, p in groups.items():
        exp = p * cfg.requests
        if exp >= min_expected:
            observed.append(observed_by_key[key])
            expected.append(exp)
        else:
            tail_obs += observed_by_key[key]
            tail_exp += exp
    if tail_exp > 0:
        observed.append(tail_obs)
        expected.append(tail_exp)
    return np.asarray(observed, dtype=np.float64), np.asarray(expected)


class TestZipfGoodnessOfFit:
    def test_trace_matches_requested_zipf_distribution(self):
        cfg = LoadgenConfig(requests=20000, universe=128, zipf_s=1.1, seed=0)
        observed, expected = _zipf_buckets(cfg)
        assert observed.sum() == cfg.requests
        np.testing.assert_allclose(expected.sum(), cfg.requests)
        chi2 = float(((observed - expected) ** 2 / expected).sum())
        critical = _chi2_critical(len(observed) - 1)
        assert chi2 < critical, (
            "trace rejects Zipf(s=%.2f): chi2 %.1f >= critical %.1f (df %d)"
            % (cfg.zipf_s, chi2, critical, len(observed) - 1)
        )

    def test_gof_holds_across_exponents(self):
        for s in (0.7, 1.1, 1.4):
            cfg = LoadgenConfig(requests=20000, universe=128, zipf_s=s, seed=0)
            observed, expected = _zipf_buckets(cfg)
            chi2 = float(((observed - expected) ** 2 / expected).sum())
            assert chi2 < _chi2_critical(len(observed) - 1), "s=%.2f" % s

    def test_negative_control_uniform_is_rejected(self):
        # The same trace against a *uniform* expectation must fail the
        # fit decisively — the statistic has teeth.
        cfg = LoadgenConfig(requests=20000, universe=128, zipf_s=1.1, seed=0)
        observed, _ = _zipf_buckets(cfg, min_expected=0.0)
        uniform = np.full(len(observed), cfg.requests / len(observed))
        chi2 = float(((observed - uniform) ** 2 / uniform).sum())
        assert chi2 > 10 * _chi2_critical(len(observed) - 1)


class TestInProcess:
    def test_report_accounts_for_every_request(self):
        report = run_loadgen(
            LoadgenConfig(requests=300, universe=16, clients=4, seed=1),
            serve_config=ServeConfig(persist=False, warm=False),
        )
        assert report["mode"] == "in-process"
        assert report["completed"] == 300 and report["failed"] == 0
        assert report["hits"] + report["misses"] == 300
        # 16 distinct shapes, 300 requests: overwhelmingly cache hits.
        assert report["hit_rate"] > 0.9
        assert report["qps"] > 0
        assert report["hit_p99_us"] > 0 and report["miss_p99_us"] > 0

    def test_external_service_left_open(self):
        svc = PlanService(ServeConfig(persist=False, warm=False))
        run_loadgen(
            LoadgenConfig(requests=50, universe=8, clients=2), service=svc
        )
        svc.submit(256, 256, 256)  # still usable
        svc.close()


class TestSocketMode:
    def test_socket_replay_matches_contract(self):
        service = PlanService(ServeConfig(persist=False, warm=False))
        server = PlanServer(service, port=0).start()
        try:
            report = run_loadgen(
                LoadgenConfig(requests=200, universe=16, clients=3, seed=2),
                connect=("127.0.0.1", server.port),
            )
        finally:
            server.stop()
        assert report["mode"] == "socket"
        assert report["completed"] == 200 and report["failed"] == 0
        assert report["hits"] + report["misses"] == 200
        assert report["hit_rate"] > 0.8
