"""JSONL-over-TCP front-end: the docs/SERVING.md wire contract, live."""

import json
import socket

from repro.gpu.spec import resolve_gpu
from repro.plan import PlanServer, PlanService, ServeConfig, plan_query


def _start():
    service = PlanService(ServeConfig(persist=False, warm=False))
    return PlanServer(service, port=0).start()


def _rpc(fh, msg):
    fh.write((json.dumps(msg) + "\n").encode("utf-8"))
    fh.flush()
    return json.loads(fh.readline().decode("utf-8"))


class TestProtocol:
    def test_plan_stats_shutdown_session(self):
        server = _start()
        try:
            with socket.create_connection(
                ("127.0.0.1", server.port), timeout=10
            ) as sock:
                fh = sock.makefile("rwb")

                reply = _rpc(fh, {
                    "op": "plan", "m": 512, "n": 512, "k": 4096, "id": 7,
                    "dtype": "fp16_fp32", "gpu": "a100",
                })
                assert reply["ok"] and reply["id"] == 7
                assert reply["cache"] == "miss"
                assert reply["server_latency_us"] > 0
                expect = plan_query(
                    512, 512, 4096, "fp16_fp32", resolve_gpu("a100")
                )
                assert reply["plan"]["kind"] == expect.kind
                assert reply["plan"]["g"] == expect.g
                assert reply["plan"]["time_s"] == expect.time_s

                again = _rpc(fh, {"op": "plan", "m": 512, "n": 512, "k": 4096})
                assert again["cache"] == "hit"
                assert again["plan"]["g"] == expect.g

                stats = _rpc(fh, {"op": "stats"})
                assert stats["ok"]
                assert stats["stats"]["requests"] == 2
                assert stats["stats"]["hits"] == 1

                bye = _rpc(fh, {"op": "shutdown"})
                assert bye["ok"] and bye["bye"]
        finally:
            server.stop()

    def test_errors_keep_connection_usable(self):
        server = _start()
        try:
            with socket.create_connection(
                ("127.0.0.1", server.port), timeout=10
            ) as sock:
                fh = sock.makefile("rwb")
                # Malformed JSON.
                fh.write(b"{nope\n")
                fh.flush()
                bad = json.loads(fh.readline())
                assert not bad["ok"] and "error" in bad
                # Unknown op.
                assert not _rpc(fh, {"op": "frobnicate"})["ok"]
                # Invalid shape.
                assert not _rpc(fh, {"op": "plan", "m": -1, "n": 1, "k": 1})["ok"]
                # Still serving on the same connection.
                good = _rpc(fh, {"op": "plan", "m": 256, "n": 256, "k": 256})
                assert good["ok"]
        finally:
            server.stop()

    def test_concurrent_connections(self):
        server = _start()
        try:
            replies = []
            conns = [
                socket.create_connection(("127.0.0.1", server.port), timeout=10)
                for _ in range(4)
            ]
            try:
                files = [c.makefile("rwb") for c in conns]
                for i, fh in enumerate(files):
                    fh.write((json.dumps({
                        "op": "plan", "m": 384 + 128 * i, "n": 384, "k": 768,
                    }) + "\n").encode())
                    fh.flush()
                for fh in files:
                    replies.append(json.loads(fh.readline()))
            finally:
                for c in conns:
                    c.close()
            assert all(r["ok"] for r in replies)
            assert len({r["plan"]["m"] for r in replies}) == 4
        finally:
            server.stop()
