"""JSONL-over-TCP front-end: the docs/SERVING.md wire contract, live."""

import json
import socket
import time

import pytest

from repro.gpu.spec import resolve_gpu
from repro.obs.counters import get_counter, reset_counters
from repro.plan import PlanServer, PlanService, ServeConfig, plan_query


def _start(config=None, **kw):
    service = PlanService(config or ServeConfig(persist=False, warm=False))
    return PlanServer(service, port=0, **kw).start()


def _rpc(fh, msg):
    fh.write((json.dumps(msg) + "\n").encode("utf-8"))
    fh.flush()
    return json.loads(fh.readline().decode("utf-8"))


class TestProtocol:
    def test_plan_stats_shutdown_session(self):
        server = _start()
        try:
            with socket.create_connection(
                ("127.0.0.1", server.port), timeout=10
            ) as sock:
                fh = sock.makefile("rwb")

                reply = _rpc(fh, {
                    "op": "plan", "m": 512, "n": 512, "k": 4096, "id": 7,
                    "dtype": "fp16_fp32", "gpu": "a100",
                })
                assert reply["ok"] and reply["id"] == 7
                assert reply["cache"] == "miss"
                assert reply["server_latency_us"] > 0
                expect = plan_query(
                    512, 512, 4096, "fp16_fp32", resolve_gpu("a100")
                )
                assert reply["plan"]["kind"] == expect.kind
                assert reply["plan"]["g"] == expect.g
                assert reply["plan"]["time_s"] == expect.time_s

                again = _rpc(fh, {"op": "plan", "m": 512, "n": 512, "k": 4096})
                assert again["cache"] == "hit"
                assert again["plan"]["g"] == expect.g

                stats = _rpc(fh, {"op": "stats"})
                assert stats["ok"]
                assert stats["stats"]["requests"] == 2
                assert stats["stats"]["hits"] == 1

                bye = _rpc(fh, {"op": "shutdown"})
                assert bye["ok"] and bye["bye"]
        finally:
            server.stop()

    def test_errors_keep_connection_usable(self):
        server = _start()
        try:
            with socket.create_connection(
                ("127.0.0.1", server.port), timeout=10
            ) as sock:
                fh = sock.makefile("rwb")
                # Malformed JSON.
                fh.write(b"{nope\n")
                fh.flush()
                bad = json.loads(fh.readline())
                assert not bad["ok"] and "error" in bad
                # Unknown op.
                assert not _rpc(fh, {"op": "frobnicate"})["ok"]
                # Invalid shape.
                assert not _rpc(fh, {"op": "plan", "m": -1, "n": 1, "k": 1})["ok"]
                # Still serving on the same connection.
                good = _rpc(fh, {"op": "plan", "m": 256, "n": 256, "k": 256})
                assert good["ok"]
        finally:
            server.stop()

    def test_idle_connection_reaped_after_recv_timeout(self):
        server = _start(recv_timeout_s=0.3)
        reset_counters()
        try:
            with socket.create_connection(
                ("127.0.0.1", server.port), timeout=10
            ) as sock:
                # Connect and send nothing: the server must hang up.
                assert sock.recv(64) == b""
            assert get_counter("serve.idle_disconnects") == 1
        finally:
            server.stop()
            reset_counters()

    def test_active_connection_outlives_recv_timeout(self):
        """The timeout is per-*recv*: a client issuing spaced requests is
        never disconnected, and error-reply semantics are unchanged."""
        server = _start(recv_timeout_s=0.5)
        try:
            with socket.create_connection(
                ("127.0.0.1", server.port), timeout=10
            ) as sock:
                fh = sock.makefile("rwb")
                for _ in range(3):
                    time.sleep(0.3)  # under the timeout, repeatedly
                    ok = _rpc(fh, {"op": "plan", "m": 256, "n": 256, "k": 256})
                    assert ok["ok"]
                assert not _rpc(fh, {"op": "frobnicate"})["ok"]
        finally:
            server.stop()

    def test_concurrent_connections(self):
        server = _start()
        try:
            replies = []
            conns = [
                socket.create_connection(("127.0.0.1", server.port), timeout=10)
                for _ in range(4)
            ]
            try:
                files = [c.makefile("rwb") for c in conns]
                for i, fh in enumerate(files):
                    fh.write((json.dumps({
                        "op": "plan", "m": 384 + 128 * i, "n": 384, "k": 768,
                    }) + "\n").encode())
                    fh.flush()
                for fh in files:
                    replies.append(json.loads(fh.readline()))
            finally:
                for c in conns:
                    c.close()
            assert all(r["ok"] for r in replies)
            assert len({r["plan"]["m"] for r in replies}) == 4
        finally:
            server.stop()


class TestErrorPaths:
    def test_oversized_request_line_structured_error(self):
        server = _start(max_line_bytes=256)
        reset_counters()
        try:
            with socket.create_connection(
                ("127.0.0.1", server.port), timeout=10
            ) as sock:
                fh = sock.makefile("rwb")
                fh.write(b"x" * 4096 + b"\n")
                fh.flush()
                reply = json.loads(fh.readline())
                assert not reply["ok"]
                assert reply["code"] == "oversized"
                assert "256" in reply["error"]
                assert get_counter("serve.oversized_line") == 1
                # The stream stayed framed: next request is served.
                good = _rpc(fh, {"op": "plan", "m": 256, "n": 256, "k": 256})
                assert good["ok"]
        finally:
            server.stop()
            reset_counters()

    def test_health_op_over_the_wire(self):
        server = _start()
        try:
            with socket.create_connection(
                ("127.0.0.1", server.port), timeout=10
            ) as sock:
                fh = sock.makefile("rwb")
                assert _rpc(fh, {"op": "plan", "m": 256, "n": 256, "k": 256})["ok"]
                reply = _rpc(fh, {"op": "health"})
                assert reply["ok"]
                health = reply["health"]
                assert health["state"] == "serving"
                assert health["breaker"] == "closed"
                assert health["requests"] == 1
                assert health["shed"] == 0
                assert health["shed_rate"] == 0.0
                assert health["uptime_s"] >= 0
        finally:
            server.stop()

    def test_request_during_drain_rejected_health_still_answers(self):
        server = _start()
        try:
            with socket.create_connection(
                ("127.0.0.1", server.port), timeout=10
            ) as sock:
                fh = sock.makefile("rwb")
                server.service.drain()
                reply = _rpc(fh, {"op": "plan", "m": 256, "n": 256,
                                  "k": 256, "id": 3})
                assert not reply["ok"]
                assert reply["code"] == "draining"
                assert reply["id"] == 3
                health = _rpc(fh, {"op": "health"})
                assert health["ok"]
                assert health["health"]["state"] == "draining"
        finally:
            server.stop()

    def test_chaos_op_forbidden_without_flag(self):
        server = _start()
        try:
            with socket.create_connection(
                ("127.0.0.1", server.port), timeout=10
            ) as sock:
                fh = sock.makefile("rwb")
                reply = _rpc(fh, {"op": "chaos", "spec": "fail:1"})
                assert not reply["ok"]
                assert reply["code"] == "forbidden"
        finally:
            server.stop()

    def test_chaos_op_allowed_when_armed_at_boot(self):
        server = _start(ServeConfig(
            persist=False, warm=False, chaos_spec="off",
        ))
        try:
            with socket.create_connection(
                ("127.0.0.1", server.port), timeout=10
            ) as sock:
                fh = sock.makefile("rwb")
                reply = _rpc(fh, {"op": "chaos", "spec": "fail:2"})
                assert reply["ok"] and reply["chaos"] == "fail:2"
                off = _rpc(fh, {"op": "chaos", "spec": "off"})
                assert off["ok"] and off["chaos"] == "off"
                bad = _rpc(fh, {"op": "chaos", "spec": "explode"})
                assert not bad["ok"]
        finally:
            server.stop()


class TestStopContract:
    def test_stop_joins_accept_loop(self):
        server = _start()
        server.stop()
        assert server._thread is not None
        assert not server._thread.is_alive()

    def test_wedged_accept_loop_raises_not_leaks(self, monkeypatch):
        """A stop() whose accept loop refuses to exit must surface the
        leak (counter + RuntimeError) after tearing down what it can —
        the silent-leak regression this pins down."""
        server = _start()
        reset_counters()
        # Wedge: the shutdown request never reaches the accept loop.
        monkeypatch.setattr(server._tcp, "begin_shutdown", lambda: None)
        try:
            with pytest.raises(RuntimeError, match="still alive"):
                server.stop(timeout_s=0.2)
            assert get_counter("serve.stop_timeout") == 1
            # Best-effort teardown happened anyway: the listener socket
            # is closed even though the thread is still wedged.
            assert server._tcp.socket.fileno() == -1
            assert server._thread.is_alive()
        finally:
            monkeypatch.undo()
            server._tcp.shutdown()  # un-wedge so the thread exits
            server._thread.join(timeout=5)
            reset_counters()
