"""The planning layer's core contract: one arithmetic, every consumer.

Pins the plan/evaluate split the serving daemon depends on: a scalar
``plan_query`` is a one-row ``plan_batch``; the library's per-problem
``StreamKLibrary.plan`` agrees field-for-field with the batched planner;
and the corpus engine's ``streamk_times`` is exactly the batch's
``time_s`` column.
"""

import numpy as np
import pytest

from repro.corpus.generator import CorpusSpec, generate_corpus
from repro.errors import ConfigurationError
from repro.gemm.dtypes import FP16_FP32, FP64
from repro.gemm.problem import GemmProblem
from repro.gpu.spec import available_gpus, resolve_gpu
from repro.ensembles.streamk_library import StreamKLibrary
from repro.harness.vectorized import streamk_times
from repro.plan import KIND_NAMES, Plan, plan_batch, plan_query

SHAPES = generate_corpus(CorpusSpec(size=96, seed=7))

#: One shape per planning regime on A100 (108 SMs, fp16 256x128 tiles).
REGIME_SHAPES = {
    "data_parallel": (4096, 6912, 512),  # tiles % p == 0
    "basic_stream_k": (512, 512, 4096),  # tiles < p
    "two_tile": (4096, 4096, 4096),  # everything else
}


class TestScalarBatchEquivalence:
    def test_plan_query_is_one_row_of_plan_batch(self):
        gpu = resolve_gpu("a100")
        batch = plan_batch(SHAPES, FP16_FP32, gpu)
        for i in range(len(batch)):
            m, n, k = (int(v) for v in SHAPES[i])
            assert plan_query(m, n, k, FP16_FP32, gpu) == batch.plan(i)

    def test_streamk_times_is_the_time_column(self):
        gpu = resolve_gpu("a100")
        batch = plan_batch(SHAPES, FP16_FP32, gpu)
        assert np.array_equal(
            streamk_times(SHAPES, FP16_FP32, gpu), batch.time_s
        )

    @pytest.mark.parametrize("kind,shape", sorted(REGIME_SHAPES.items()))
    def test_regimes_resolve_as_expected(self, kind, shape):
        plan = plan_query(*shape, FP16_FP32, resolve_gpu("a100"))
        assert plan.kind == kind
        assert plan.kind in KIND_NAMES


class TestLibraryParity:
    """StreamKLibrary.plan now delegates here; every field must agree
    with what the pre-split scalar regime logic computed."""

    @pytest.mark.parametrize("gpu_name", available_gpus())
    def test_plan_fields_match_library_across_presets(self, gpu_name):
        gpu = resolve_gpu(gpu_name)
        lib = StreamKLibrary(gpu, FP16_FP32)
        for m, n, k in SHAPES[:32]:
            problem = GemmProblem(int(m), int(n), int(k), dtype=FP16_FP32)
            lib_plan = lib.plan(problem)
            plan = plan_query(
                int(m), int(n), int(k), FP16_FP32, gpu, params=lib.params
            )
            assert plan.kind == lib_plan.kind
            assert plan.g == lib_plan.g
            assert plan.num_tiles == lib_plan.num_tiles
            assert plan.iters_per_tile == lib_plan.iters_per_tile
            assert plan.k_aligned_fraction == lib_plan.k_aligned_fraction
            assert plan.fixup_stores == lib_plan.fixup_stores

    def test_fp64_regime_boundaries(self, gpu4):
        lib = StreamKLibrary(gpu4, FP64)
        for m, n, k in ((128, 128, 1024), (512, 512, 256), (640, 384, 96)):
            problem = GemmProblem(m, n, k, dtype=FP64)
            lib_plan = lib.plan(problem)
            plan = plan_query(m, n, k, FP64, gpu4, params=lib.params)
            assert (plan.kind, plan.g, plan.fixup_stores) == (
                lib_plan.kind, lib_plan.g, lib_plan.fixup_stores,
            )


class TestPlanRecord:
    def test_payload_round_trip_is_lossless(self):
        plan = plan_query(384, 384, 1536, FP16_FP32, resolve_gpu("a100"))
        assert Plan.from_payload(plan.to_payload()) == plan

    def test_provenance_excluded_from_equality(self):
        import dataclasses

        plan = plan_query(384, 384, 1536, FP16_FP32, resolve_gpu("a100"))
        assert dataclasses.replace(plan, provenance="cache:hot") == plan

    def test_carries_cache_key_material(self):
        from repro.model.paramcache import gpu_fingerprint
        from repro.plan import PLAN_ENGINE_VERSION

        gpu = resolve_gpu("rtx3090")
        plan = plan_query(256, 256, 256, "fp32", gpu)
        assert plan.engine_version == PLAN_ENGINE_VERSION
        assert plan.gpu_fingerprint == gpu_fingerprint(gpu)
        assert plan.dtype_name == "fp32"
        assert plan.gpu_name == "rtx3090"

    def test_rejects_nonpositive_dimensions(self):
        with pytest.raises(ConfigurationError):
            plan_query(0, 128, 128, FP16_FP32, resolve_gpu("a100"))

    def test_rejects_malformed_shapes(self):
        with pytest.raises(ConfigurationError):
            plan_batch(
                np.ones((4, 2), dtype=np.int64),
                FP16_FP32,
                resolve_gpu("a100"),
            )
