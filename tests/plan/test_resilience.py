"""Overload resilience: shedding, deadlines, breaker, chaos, client retries.

The acceptance scenario of this layer (docs/SERVING.md, "Overload
behavior"): under a burst exceeding ``max_queue_depth`` with a stalled
planner, hits keep being served, sheds are deterministic (a seeded
replay is byte-identical), and the breaker recovers to ``closed``.
"""

import json
import socket
import threading
import time

import pytest

from repro.errors import ConfigurationError
from repro.obs.counters import get_counter
from repro.plan import (
    CircuitBreaker,
    DeadlineExpiredError,
    DegradedError,
    DrainingError,
    OverloadedError,
    PlanClient,
    PlanService,
    PlanTimeoutError,
    RetryPolicy,
    ServeConfig,
)
from repro.plan.loadgen import LoadgenConfig, run_loadgen
from repro.plan.resilience import ServeChaos, parse_chaos
from repro.plan.service import _Pending


def _service(**overrides):
    defaults = dict(persist=False, warm=False, batch_window_s=0.002)
    defaults.update(overrides)
    return PlanService(ServeConfig(**defaults))


def _submit_quietly(svc, m, n, k, **kw):
    try:
        svc.submit(m, n, k, **kw)
    except Exception:
        pass


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


# --------------------------------------------------------------------- #
# Circuit breaker (unit, fake clock)                                     #
# --------------------------------------------------------------------- #


class TestCircuitBreaker:
    def test_opens_on_threshold_consecutive_failures(self):
        clock = FakeClock()
        br = CircuitBreaker(threshold=3, cooldown_s=1.0, clock=clock)
        br.record_failure()
        br.record_failure()
        assert br.state == "closed" and br.admit()
        br.record_failure()
        assert br.state == "open"
        assert not br.admit()

    def test_success_resets_the_consecutive_count(self):
        br = CircuitBreaker(threshold=2, clock=FakeClock())
        br.record_failure()
        br.record_success()
        br.record_failure()
        assert br.state == "closed"

    def test_half_open_probe_after_cooldown_single_slot(self):
        clock = FakeClock()
        br = CircuitBreaker(threshold=1, cooldown_s=1.0, clock=clock)
        br.record_failure()
        assert br.state == "open"
        clock.t = 0.5
        assert not br.admit()  # still cooling down
        clock.t = 1.0
        assert br.admit()  # the probe
        assert br.state == "half_open"
        assert not br.admit()  # one probe at a time
        br.record_success()
        assert br.state == "closed"
        assert br.admit()

    def test_failed_probe_reopens_immediately(self):
        clock = FakeClock()
        br = CircuitBreaker(threshold=3, cooldown_s=1.0, clock=clock)
        for _ in range(3):
            br.record_failure()
        clock.t = 1.0
        assert br.admit()
        br.record_failure()  # one failure, not threshold, re-opens
        assert br.state == "open"
        clock.t = 1.5
        assert not br.admit()  # cooldown restarted at re-open
        clock.t = 2.0
        assert br.admit()

    def test_cancel_probe_releases_the_slot(self):
        clock = FakeClock()
        br = CircuitBreaker(threshold=1, cooldown_s=0.0, clock=clock)
        br.record_failure()
        assert br.admit()
        assert not br.admit()
        br.cancel_probe()
        assert br.admit()  # slot free again, no outcome recorded

    def test_zero_threshold_disables(self):
        br = CircuitBreaker(threshold=0, clock=FakeClock())
        for _ in range(10):
            br.record_failure()
        assert br.state == "closed" and br.admit()

    def test_negative_cooldown_rejected(self):
        with pytest.raises(ConfigurationError):
            CircuitBreaker(cooldown_s=-1.0)


# --------------------------------------------------------------------- #
# Retry policy + chaos spec (unit)                                       #
# --------------------------------------------------------------------- #


class TestRetryPolicy:
    def test_backoff_schedule_is_seeded_and_identical(self):
        policy = RetryPolicy(max_retries=5, base_backoff_s=0.01, seed=42)
        a = [policy.backoff_s(i, policy.rng()) for i in range(5)]
        b = [policy.backoff_s(i, policy.rng()) for i in range(5)]
        assert a == b  # same seed, byte-identical schedule
        other = RetryPolicy(max_retries=5, base_backoff_s=0.01, seed=43)
        assert a != [other.backoff_s(i, other.rng()) for i in range(5)]

    def test_backoff_exponential_and_capped(self):
        policy = RetryPolicy(base_backoff_s=0.01, max_backoff_s=0.05)
        rng = policy.rng()
        for attempt in range(10):
            s = policy.backoff_s(attempt, rng)
            cap = min(0.05, 0.01 * 2 ** attempt)
            assert 0.5 * cap <= s < cap

    def test_should_retry_codes_and_budget(self):
        policy = RetryPolicy(max_retries=2)
        assert policy.should_retry("overloaded", 0)
        assert policy.should_retry("timeout", 1)
        assert not policy.should_retry("overloaded", 2)  # budget spent
        assert not policy.should_retry("degraded", 0)  # breaker is open
        assert not policy.should_retry(None, 0)
        assert not RetryPolicy().should_retry("overloaded", 0)

    def test_invalid_config_rejected(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ConfigurationError):
            RetryPolicy(base_backoff_s=-0.1)


class TestChaosSpec:
    def test_parse_round_trips(self):
        assert parse_chaos(None) is None
        assert parse_chaos("off") is None
        assert parse_chaos("  none ") is None
        assert parse_chaos("stall:0.5").spec() == "stall:0.5"
        assert parse_chaos("stall:0.5:3").spec() == "stall:0.5:3"
        assert parse_chaos("fail").spec() == "fail"
        assert parse_chaos("fail:2").spec() == "fail:2"

    @pytest.mark.parametrize(
        "spec", ["explode", "stall", "stall:abc", "fail:0", "stall:-1"]
    )
    def test_invalid_specs_rejected(self, spec):
        with pytest.raises(ConfigurationError):
            parse_chaos(spec)

    def test_fail_chaos_exhausts_after_n_batches(self):
        chaos = ServeChaos("fail", batches=2)
        for _ in range(2):
            with pytest.raises(RuntimeError, match="injected planner"):
                chaos.apply()
        chaos.apply()  # exhausted: no-op
        assert chaos.applied == 2


# --------------------------------------------------------------------- #
# Service: admission control + deterministic shedding                    #
# --------------------------------------------------------------------- #


def _run_shed_trace():
    """One seeded overload episode; returns the per-request outcomes."""
    outcomes = []
    svc = _service(max_queue_depth=2, chaos_spec="off")
    fillers = []
    try:
        svc.submit(512, 512, 512)  # prime the hit shape
        svc.arm_chaos("stall:1.5:1")
        # Wedge: the next miss dequeues alone and the batcher stalls.
        wedge = threading.Thread(
            target=_submit_quietly, args=(svc, 96, 96, 96)
        )
        wedge.start()
        fillers.append(wedge)
        time.sleep(0.3)  # batcher is now mid-stall
        # Hold the queue at capacity with background waiters.
        for i in range(2):
            t = threading.Thread(
                target=_submit_quietly, args=(svc, 97 + i, 96, 96)
            )
            t.start()
            fillers.append(t)
        time.sleep(0.2)  # both queued; depth == max_queue_depth
        trace = [
            (512, 512, 512), (200, 96, 96), (512, 512, 512),
            (201, 96, 96), (202, 96, 96),
        ]
        for m, n, k in trace:
            try:
                plan = svc.submit(m, n, k, timeout=10.0)
                outcomes.append(
                    "hit" if plan.provenance.startswith("cache") else "planned"
                )
            except OverloadedError:
                outcomes.append("overloaded")
    finally:
        svc.close()  # drains: the batcher flushes the fillers' work
        for t in fillers:
            t.join(timeout=10)
    return outcomes


class TestAdmissionControl:
    def test_sheds_at_the_bound_hits_unaffected_replay_identical(self):
        shed0 = get_counter("serve.shed")
        first = _run_shed_trace()
        # The decision depends only on queue depth at arrival: hits
        # bypass the queue entirely, every new miss is shed.
        assert first == [
            "hit", "overloaded", "hit", "overloaded", "overloaded"
        ]
        assert get_counter("serve.shed") - shed0 == 3
        # Seeded replay: a second episode makes byte-identical decisions.
        assert _run_shed_trace() == first

    def test_shed_error_is_structured(self):
        try:
            raise OverloadedError("x")
        except OverloadedError as exc:
            assert exc.code == "overloaded"
            assert isinstance(exc, ConfigurationError)


# --------------------------------------------------------------------- #
# Service: deadlines + abandoned waiters                                 #
# --------------------------------------------------------------------- #


class TestDeadlines:
    def test_waiter_never_blocks_past_its_deadline(self):
        svc = _service(chaos_spec="off")
        try:
            svc.arm_chaos("stall:1.0:1")
            wedge = threading.Thread(
                target=_submit_quietly, args=(svc, 96, 96, 96)
            )
            wedge.start()
            time.sleep(0.2)
            t0 = time.perf_counter()
            with pytest.raises(DeadlineExpiredError) as err:
                svc.submit(128, 96, 96, timeout=10.0, deadline_ms=60.0)
            assert time.perf_counter() - t0 < 0.5  # not the 10s timeout
            assert err.value.code == "deadline_expired"
        finally:
            svc.close()
            wedge.join(timeout=10)

    def test_batcher_drops_expired_entries_before_planning(self):
        """An entry whose budget lapsed while queued is resolved with
        ``DeadlineExpiredError`` and never counted as planned work."""
        svc = _service()
        try:
            binding = svc._binding("fp16_fp32", "a100")
            now = time.perf_counter()
            pending = _Pending(
                binding, (64, 64, 64), now - 1.0, deadline_at=now - 0.5
            )
            unique0 = get_counter("serve.unique_shapes")
            expired0 = get_counter("serve.deadline_expired")
            with svc._cond:
                svc._queue.append(pending)
                svc._cond.notify_all()
            assert pending.event.wait(5.0)
            assert isinstance(pending.error, DeadlineExpiredError)
            assert get_counter("serve.deadline_expired") == expired0 + 1
            # Nothing was planned for it.
            assert get_counter("serve.unique_shapes") == unique0
        finally:
            svc.close()

    def test_nonpositive_deadline_rejected(self):
        with _service() as svc:
            with pytest.raises(ConfigurationError):
                svc.submit(64, 64, 64, deadline_ms=0.0)

    def test_timed_out_waiter_is_removed_from_the_queue(self):
        """The orphaned-pending fix: a waiter whose ``timeout`` lapses
        pulls its entry off the queue (``serve.abandoned``) so the
        batcher never plans work nobody will read."""
        svc = _service(chaos_spec="off")
        try:
            svc.arm_chaos("stall:1.0:1")
            wedge = threading.Thread(
                target=_submit_quietly, args=(svc, 96, 96, 96)
            )
            wedge.start()
            time.sleep(0.2)
            abandoned0 = get_counter("serve.abandoned")
            with pytest.raises(PlanTimeoutError) as err:
                svc.submit(160, 96, 96, timeout=0.05)
            assert err.value.code == "timeout"
            assert get_counter("serve.abandoned") == abandoned0 + 1
            with svc._cond:
                assert all(p.key != (160, 96, 96) for p in svc._queue)
        finally:
            svc.close()
            wedge.join(timeout=10)


# --------------------------------------------------------------------- #
# Service: breaker lifecycle under fail chaos                            #
# --------------------------------------------------------------------- #


class TestBreakerLifecycle:
    def test_open_degrade_probe_reopen_recover(self):
        svc = _service(
            chaos_spec="off",
            breaker_threshold=3,
            breaker_cooldown_s=0.15,
        )
        try:
            svc.submit(512, 512, 512)  # prime the hit shape
            open0 = get_counter("serve.breaker_open")
            closed0 = get_counter("serve.breaker_closed")
            svc.arm_chaos("fail:4")
            # Three consecutive batch failures open the breaker.
            for i in range(3):
                with pytest.raises(RuntimeError, match="injected planner"):
                    svc.submit(300 + i, 96, 96)
            assert svc._breaker.state == "open"
            assert get_counter("serve.breaker_open") == open0 + 1
            # Degraded: misses rejected fast, hits still served.
            with pytest.raises(DegradedError) as err:
                svc.submit(310, 96, 96)
            assert err.value.code == "degraded"
            assert svc.health()["state"] == "degraded"
            assert svc.submit(512, 512, 512).provenance.startswith("cache")
            # Cooldown, then a half-open probe that fails re-opens.
            time.sleep(0.2)
            with pytest.raises(RuntimeError, match="injected planner"):
                svc.submit(311, 96, 96)
            assert svc._breaker.state == "open"
            assert get_counter("serve.breaker_open") == open0 + 2
            # Chaos is exhausted: the next probe succeeds and recovers.
            time.sleep(0.2)
            plan = svc.submit(312, 96, 96)
            assert plan.provenance == "model"
            assert svc._breaker.state == "closed"
            assert get_counter("serve.breaker_closed") == closed0 + 1
            assert svc.health()["state"] == "serving"
        finally:
            svc.close()

    def test_breaker_disabled_never_degrades(self):
        svc = _service(chaos_spec="fail:5", breaker_threshold=0)
        try:
            for i in range(5):
                with pytest.raises(RuntimeError):
                    svc.submit(330 + i, 96, 96)
            assert svc._breaker.state == "closed"
            assert svc.submit(340, 96, 96).provenance == "model"
        finally:
            svc.close()

    def test_timed_out_probe_frees_the_half_open_slot(self):
        """A half-open probe whose waiter times out while still queued
        must release the probe slot on abandon — otherwise the breaker
        wedges half-open and every future miss is rejected forever."""
        svc = _service(
            chaos_spec="off",
            breaker_threshold=1,
            breaker_cooldown_s=0.0,
            batch_window_s=0.5,
        )
        try:
            svc.arm_chaos("fail:1")
            with pytest.raises(RuntimeError, match="injected planner"):
                svc.submit(350, 96, 96)
            assert svc._breaker.state == "open"
            svc.arm_chaos("off")
            # Zero cooldown: this miss is the half-open probe.  Its
            # timeout lapses inside the long batching window, so it is
            # abandoned while still queued.
            with pytest.raises(PlanTimeoutError):
                svc.submit(351, 96, 96, timeout=0.05)
            assert svc._breaker.state == "half_open"
            # The slot is free again: a fresh probe is admitted and its
            # success recovers the breaker.
            plan = svc.submit(352, 96, 96, timeout=10.0)
            assert plan.provenance == "model"
            assert svc._breaker.state == "closed"
        finally:
            svc.close()

    def test_deadline_dropped_probe_frees_the_half_open_slot(self):
        """The batcher's deadline-expiry drop must release the probe
        slot too — the other way an admitted probe can die unplanned."""
        svc = _service(breaker_threshold=1, breaker_cooldown_s=0.0)
        try:
            br = svc._breaker
            br.record_failure()
            assert br.state == "open"
            assert br.admit()  # this caller is the probe
            assert br.state == "half_open"
            assert not br.admit()  # slot held
            binding = svc._binding("fp16_fp32", "a100")
            now = time.perf_counter()
            pending = _Pending(
                binding, (64, 64, 64), now - 1.0,
                deadline_at=now - 0.5, probe=True,
            )
            with svc._cond:
                svc._queue.append(pending)
                svc._cond.notify_all()
            assert pending.event.wait(5.0)
            assert isinstance(pending.error, DeadlineExpiredError)
            assert br.admit()  # slot released by the drop path
        finally:
            svc.close()


# --------------------------------------------------------------------- #
# Service: lifecycle introspection                                       #
# --------------------------------------------------------------------- #


class TestLifecycle:
    def test_drain_rejects_new_queries_keeps_answering(self):
        svc = _service()
        svc.submit(64, 64, 64)
        svc.drain()
        with pytest.raises(DrainingError) as err:
            svc.submit(65, 64, 64)
        assert err.value.code == "draining"
        assert svc.stats()["state"] == "draining"
        assert svc.health()["state"] == "draining"
        svc.close()

    def test_stats_and_health_never_raise_after_close(self):
        svc = _service()
        svc.submit(64, 64, 64)
        svc.close()
        stats = svc.stats()
        assert stats["state"] == "closed"
        assert stats["batcher_alive"] is False
        assert stats["requests"] == 1
        assert svc.health()["state"] == "closed"
        svc.close()  # idempotent

    def test_health_shape(self):
        with _service(max_queue_depth=7) as svc:
            svc.submit(64, 64, 64)
            health = svc.health()
            assert health["state"] == "serving"
            assert health["queue_depth"] == 0
            assert health["max_queue_depth"] == 7
            assert health["breaker"] == "closed"
            assert health["requests"] == 1
            assert health["shed"] == 0 and health["shed_rate"] == 0.0
            assert health["uptime_s"] > 0

    def test_chaos_not_allowed_without_spec(self):
        with _service() as svc:
            assert not svc.chaos_allowed
            with pytest.raises(ConfigurationError):
                svc.arm_chaos("fail:1")

    def test_late_drain_rejection_is_counted(self):
        """The draining check under ``_cond`` (taken when drain lands
        between admission and enqueue) must count the rejection just
        like the entry-point check."""
        svc = _service()
        try:
            real_admit = svc._breaker.admit

            def admit_then_drain():
                ok = real_admit()
                svc._draining = True  # drain races in after admission
                return ok

            svc._breaker.admit = admit_then_drain
            before = get_counter("serve.draining_rejected")
            with pytest.raises(DrainingError):
                svc.submit(64, 64, 64)
            assert get_counter("serve.draining_rejected") == before + 1
            with svc._stats_lock:
                assert svc._draining_rejects == 1
        finally:
            svc.close()

    def test_shed_rate_counts_shed_requests_once(self):
        """``serve.requests`` is incremented before the shed decision,
        so shed requests are already in the denominator — 50 sheds out
        of 100 requests is a 0.5 rate, not 0.33."""
        with _service() as svc:
            with svc._stats_lock:
                svc._requests_total = 100
                svc._shed = 50
            assert svc.health()["shed_rate"] == 0.5

    def test_close_with_wedged_batcher_skips_flush(self):
        """If the batcher outlives the join timeout, close() must not
        flush plan shards under the still-live writer, and stats() must
        keep reporting the thread as alive."""
        svc = _service()
        real_batcher = svc._batcher
        try:
            svc.submit(64, 64, 64)
            flushed = []
            for binding in svc._bindings.values():
                binding.cache.flush = lambda: flushed.append(True)

            class Wedged:
                def join(self, timeout=None):
                    pass

                def is_alive(self):
                    return True

            svc._batcher = Wedged()
            wedged0 = get_counter("serve.close_wedged")
            svc.close()
            assert not flushed
            assert get_counter("serve.close_wedged") == wedged0 + 1
            stats = svc.stats()
            assert stats["state"] == "closed"
            assert stats["batcher_alive"] is True
        finally:
            # close() set _stop and notified, so the real batcher exits.
            real_batcher.join(timeout=10)
            assert not real_batcher.is_alive()


# --------------------------------------------------------------------- #
# Loadgen: client-side retries (in-process)                              #
# --------------------------------------------------------------------- #


class TestLoadgenRetries:
    def test_sheds_are_retried_and_reported(self):
        svc = _service(max_queue_depth=1, batch_window_s=0.05)
        try:
            report = run_loadgen(
                LoadgenConfig(
                    requests=128,
                    universe=64,
                    zipf_s=0.0,
                    seed=3,
                    clients=8,
                    retries=6,
                    backoff_ms=2.0,
                    timeout_s=30.0,
                ),
                service=svc,
            )
        finally:
            svc.close()
        assert report["completed"] + report["failed"] == 128
        # 8 clients against a depth-1 miss queue: sheds happen, and the
        # seeded backoff retries them.
        assert report["retries"] > 0
        if report["failed"]:
            assert set(report["outcomes"]) <= {"overloaded", "timeout"}


# --------------------------------------------------------------------- #
# PlanClient: hedging + stale-reply hygiene (scripted stub server)       #
# --------------------------------------------------------------------- #


def _stub_server(first_reply_delay_s):
    """A JSONL echo server that delays the very first request only."""
    srv = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    srv.bind(("127.0.0.1", 0))
    srv.listen(8)
    state = {"first": True}
    lock = threading.Lock()

    def conn_loop(conn):
        fh = conn.makefile("rwb")
        for line in iter(fh.readline, b""):
            msg = json.loads(line)
            with lock:
                first, state["first"] = state["first"], False
            if first:
                time.sleep(first_reply_delay_s)
            fh.write((json.dumps({
                "ok": True, "id": msg.get("id"), "cache": "hit",
                "plan": {"m": msg.get("m")},
            }) + "\n").encode("utf-8"))
            fh.flush()
        conn.close()

    def accept_loop():
        while True:
            try:
                conn, _ = srv.accept()
            except OSError:
                return
            threading.Thread(target=conn_loop, args=(conn,), daemon=True).start()

    threading.Thread(target=accept_loop, daemon=True).start()
    return srv


class TestPlanClientHedging:
    def test_hedge_wins_and_stale_loser_reply_is_skipped(self):
        srv = _stub_server(first_reply_delay_s=0.6)
        try:
            with PlanClient(
                "127.0.0.1", srv.getsockname()[1],
                timeout_s=5.0, hedge_ms=60.0,
            ) as client:
                # First request: the primary connection stalls, the
                # hedge connection answers.
                reply = client.plan(100, 100, 100)
                assert reply["ok"] and reply["plan"]["m"] == 100
                assert client.stats["hedges"] == 1
                assert client.stats["hedge_wins"] == 1
                # Let the loser's (stale) reply land in the primary's
                # buffer, then issue a second request on it: the stale
                # reply must be skipped, not misattributed.
                time.sleep(0.8)
                reply = client.plan(200, 200, 200)
                assert reply["ok"] and reply["plan"]["m"] == 200
                assert client.stats["hedges"] == 1  # no second hedge
                assert client.stats["requests"] == 2
                assert client.stats["failures"] == 0
        finally:
            srv.close()

    def test_retries_synthesize_timeout_code_on_dead_server(self):
        srv = _stub_server(first_reply_delay_s=0.0)
        host, port = srv.getsockname()
        srv.close()  # nothing listening anymore
        with PlanClient(
            host, port, timeout_s=0.2,
            retry=RetryPolicy(max_retries=2, base_backoff_s=0.001),
        ) as client:
            reply = client.plan(64, 64, 64)
            assert not reply["ok"]
            assert reply["code"] == "timeout"
            assert client.stats["retries"] == 2
            assert client.stats["failures"] == 1
