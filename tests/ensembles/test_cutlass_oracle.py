"""CUTLASS variant sets and the idealized oracle."""

import pytest

from repro.errors import ConfigurationError
from repro.gemm import BF16_FP32, FP16_FP32, FP64, GemmProblem
from repro.gpu import A100
from repro.ensembles import (
    ORACLE_BLOCKINGS,
    oracle_select,
    oracle_variants,
    singleton_variant,
    variant_time_s,
)


class TestVariantSets:
    def test_fp64_oracle_set_matches_paper(self):
        assert ORACLE_BLOCKINGS["fp64"] == (
            (32, 32, 16),
            (32, 64, 16),
            (64, 64, 16),
            (64, 128, 16),
            (128, 128, 16),
        )

    def test_fp16_oracle_set_matches_paper(self):
        assert ORACLE_BLOCKINGS["fp16_fp32"] == (
            (64, 64, 64),
            (64, 128, 32),
            (128, 128, 32),
            (128, 256, 32),
        )

    def test_singleton_uses_shipped_blocking(self):
        assert singleton_variant(FP64).blocking.as_tuple == (64, 64, 16)
        assert singleton_variant(FP16_FP32).blocking.as_tuple == (128, 128, 32)

    def test_all_oracle_variants_data_parallel(self):
        for v in oracle_variants(FP16_FP32):
            assert v.family == "data_parallel" and v.s == 1

    def test_extension_dtypes_have_sets(self):
        assert oracle_variants(BF16_FP32)

    def test_unknown_dtype_rejected(self):
        import dataclasses
        weird = dataclasses.replace(FP64, name="fp128")
        with pytest.raises(ConfigurationError):
            oracle_variants(weird)


class TestOracle:
    def test_oracle_is_min_over_variants(self):
        p = GemmProblem(700, 900, 1100, dtype=FP16_FP32)
        choice = oracle_select(p, A100)
        manual = {
            v.name: variant_time_s(v, p, A100) for v in oracle_variants(p.dtype)
        }
        assert choice.time_s == pytest.approx(min(manual.values()))
        assert choice.all_times.keys() == manual.keys()

    def test_oracle_never_worse_than_singleton(self):
        for shape in [(128, 128, 4096), (2048, 2048, 2048), (300, 5000, 700)]:
            p = GemmProblem(*shape, dtype=FP16_FP32)
            single = variant_time_s(singleton_variant(p.dtype), p, A100)
            assert oracle_select(p, A100).time_s <= single * (1 + 1e-12)

    def test_oracle_prefers_small_tiles_on_small_problems(self):
        """A 1-big-tile problem quantizes terribly at 128x128; the oracle
        must pick something finer."""
        p = GemmProblem(128, 128, 2048, dtype=FP16_FP32)
        choice = oracle_select(p, A100)
        assert choice.variant.blocking.as_tuple != (128, 256, 32)
