"""cuBLAS-like ensemble and heuristic tests."""

import pytest

from repro.gemm import FP16_FP32, FP64, GemmProblem
from repro.gpu import A100
from repro.ensembles import (
    SPLIT_FACTORS,
    cublas_select,
    cublas_variants,
    heuristic_select,
    oracle_select,
    proxy_score,
)


class TestEnsembleComposition:
    def test_fp16_ensemble_size_matches_paper_scale(self):
        """cuBLAS exposes ~24 algorithms; our stand-in: 4 blockings x
        (1 DP + 5 splits) = 24 variants."""
        assert len(cublas_variants(FP16_FP32)) == 24

    def test_fp64_ensemble_size(self):
        assert len(cublas_variants(FP64)) == 30  # 5 blockings x 6

    def test_split_factors(self):
        assert SPLIT_FACTORS == (2, 4, 8, 16, 32)

    def test_every_blocking_has_dp_and_splits(self):
        variants = cublas_variants(FP16_FP32)
        blockings = {v.blocking.as_tuple for v in variants}
        for b in blockings:
            fams = [v for v in variants if v.blocking.as_tuple == b]
            assert sum(1 for v in fams if v.family == "data_parallel") == 1
            assert sum(1 for v in fams if v.family == "fixed_split") == 5


class TestHeuristic:
    def test_deterministic(self):
        p = GemmProblem(333, 777, 1234, dtype=FP16_FP32)
        v1 = heuristic_select(cublas_variants(p.dtype), p, A100)
        v2 = heuristic_select(cublas_variants(p.dtype), p, A100)
        assert v1 == v2

    def test_big_square_problem_picks_big_tiles_unsplit(self):
        p = GemmProblem(8192, 8192, 4096, dtype=FP16_FP32)
        v = heuristic_select(cublas_variants(p.dtype), p, A100)
        assert v.s == 1
        assert v.blocking.blk_m >= 128

    def test_strong_scaling_problem_picks_split(self):
        p = GemmProblem(128, 128, 8192, dtype=FP16_FP32)
        v = heuristic_select(cublas_variants(p.dtype), p, A100)
        assert v.s > 1 or v.blocking.as_tuple != (128, 256, 32)

    def test_proxy_score_positive(self):
        p = GemmProblem(512, 512, 512, dtype=FP16_FP32)
        for v in cublas_variants(p.dtype):
            assert proxy_score(v, p, A100) > 0


class TestSelectionQuality:
    def test_measured_time_is_selected_variants_time(self):
        from repro.ensembles import variant_time_s
        p = GemmProblem(640, 640, 640, dtype=FP16_FP32)
        choice = cublas_select(p, A100)
        assert choice.time_s == pytest.approx(
            variant_time_s(choice.variant, p, A100)
        )

    def test_heuristic_sometimes_beats_dp_oracle(self):
        """Split-k variants give cuBLAS wins the DP-only oracle can't have
        (deep-k strong scaling)."""
        p = GemmProblem(128, 128, 8192, dtype=FP16_FP32)
        assert cublas_select(p, A100).time_s < oracle_select(p, A100).time_s

    def test_heuristic_never_catastrophic_on_large_problems(self):
        """On bulky compute-bound problems the proxy should land within
        2x of the oracle."""
        for shape in [(4096, 4096, 4096), (8192, 2048, 2048)]:
            p = GemmProblem(*shape, dtype=FP16_FP32)
            assert (
                cublas_select(p, A100).time_s
                <= 2.0 * oracle_select(p, A100).time_s
            )
