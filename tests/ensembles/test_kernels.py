"""Kernel variant tests."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.gemm import FP16_FP32, FP64, Blocking, GemmProblem, random_operands, reference_gemm
from repro.gpu import A100, HYPOTHETICAL_4SM
from repro.ensembles import KernelVariant, variant_time_s


class TestVariant:
    def test_names(self):
        dp = KernelVariant("data_parallel", Blocking(64, 64, 16))
        fs = KernelVariant("fixed_split", Blocking(64, 64, 16), s=4)
        assert dp.name == "data_parallel_64x64x16"
        assert fs.name == "fixed_split_64x64x16_s4"

    def test_unknown_family_rejected(self):
        with pytest.raises(ConfigurationError):
            KernelVariant("stream_j", Blocking(64, 64, 16))

    def test_dp_with_split_rejected(self):
        with pytest.raises(ConfigurationError):
            KernelVariant("data_parallel", Blocking(64, 64, 16), s=2)

    def test_invalid_split_rejected(self):
        with pytest.raises(ConfigurationError):
            KernelVariant("fixed_split", Blocking(64, 64, 16), s=0)

    def test_build_schedule_is_numerically_exact(self):
        p = GemmProblem(70, 50, 40, dtype=FP64)
        a, b = random_operands(p, 0)
        ref = reference_gemm(p, a, b)
        for variant in (
            KernelVariant("data_parallel", Blocking(16, 16, 8)),
            KernelVariant("fixed_split", Blocking(16, 16, 8), s=3),
        ):
            sched = variant.build_schedule(p)
            sched.validate()
            assert np.allclose(sched.execute(a, b), ref)


class TestTiming:
    def test_time_positive_and_composed(self):
        p = GemmProblem(512, 512, 512, dtype=FP16_FP32)
        v = KernelVariant("data_parallel", Blocking(128, 128, 32))
        t = variant_time_s(v, p, A100)
        assert t > A100.launch_latency_s

    def test_makespan_matches_executor_for_dp(self):
        from repro.gpu import Executor, KernelCostModel
        p = GemmProblem(384, 384, 128, dtype=FP16_FP32)
        v = KernelVariant("data_parallel", Blocking(128, 128, 32))
        cost = KernelCostModel(gpu=HYPOTHETICAL_4SM, blocking=v.blocking, dtype=p.dtype)
        ev = Executor(4).run(cost.build_tasks(v.build_schedule(p))).makespan
        assert v.makespan_cycles(p, HYPOTHETICAL_4SM) == pytest.approx(ev)

    def test_split_clamped_in_traffic(self):
        p = GemmProblem(256, 256, 64, dtype=FP16_FP32)  # ipt = 2
        v = KernelVariant("fixed_split", Blocking(128, 128, 32), s=32)
        tr = v.traffic(p, A100)
        # s clamps to 2: one contributor per tile
        assert tr.partials == pytest.approx(4 * 1 * 128 * 128 * 4 * 2)
