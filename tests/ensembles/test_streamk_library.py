"""Shipped Stream-K library tests: planning, scheduling, timing coherence."""

import numpy as np
import pytest

from repro.gemm import FP16_FP32, FP64, GemmProblem, random_operands, reference_gemm
from repro.gpu import A100, HYPOTHETICAL_4SM, Executor, KernelCostModel, one_wave_makespan
from repro.ensembles import StreamKLibrary


@pytest.fixture(scope="module")
def lib():
    return StreamKLibrary(A100, FP16_FP32)


@pytest.fixture(scope="module")
def lib4():
    return StreamKLibrary(HYPOTHETICAL_4SM, FP16_FP32)


class TestPlanRegimes:
    def test_perfect_quantization_plans_dp(self, lib):
        # 108 * 128 = 13824 rows, 1 tile column -> t = 108 = p
        p = GemmProblem(13824, 128, 1024, dtype=FP16_FP32)
        plan = lib.plan(p)
        assert plan.kind == "data_parallel"
        assert plan.fixup_stores == 0
        assert plan.k_aligned_fraction == 1.0

    def test_small_problem_plans_basic_stream_k(self, lib):
        p = GemmProblem(128, 128, 16384, dtype=FP16_FP32)
        plan = lib.plan(p)
        assert plan.kind == "basic_stream_k"
        assert plan.g == 8  # the Figure 8c model optimum

    def test_general_problem_plans_two_tile(self, lib):
        p = GemmProblem(3000, 3000, 1024, dtype=FP16_FP32)
        plan = lib.plan(p)
        assert plan.kind == "two_tile"
        assert plan.g == 108

    def test_schedule_matches_plan(self, lib):
        p = GemmProblem(3000, 3000, 256, dtype=FP16_FP32)
        plan = lib.plan(p)
        sched = lib.build_schedule(p)
        assert sched.g == plan.g
        assert sched.k_aligned_fraction == pytest.approx(plan.k_aligned_fraction)
        assert sched.total_fixup_stores == plan.fixup_stores


class TestTimingCoherence:
    """The closed-form library timing must equal the event-simulated
    timing of the schedule it plans."""

    @pytest.mark.parametrize(
        "m,n,k",
        [
            (384, 384, 128),    # two-tile regime on 4 SMs (t=9)
            (128, 384, 256),    # t=3 < p: basic stream-k
            (512, 128, 512),    # t=4 = p: data-parallel
            (896, 384, 128),    # Figure 3 shape
        ],
    )
    def test_makespan_matches_executor(self, lib4, m, n, k):
        p = GemmProblem(m, n, k, dtype=FP16_FP32)
        sched = lib4.build_schedule(p)
        tasks = lib4.cost.build_tasks(sched)
        ev = Executor(lib4.gpu.total_cta_slots).run(tasks).makespan
        assert lib4.makespan_cycles(p) == pytest.approx(ev, rel=1e-9)

    def test_time_includes_memory_and_launch(self, lib):
        p = GemmProblem(256, 256, 256, dtype=FP16_FP32)
        t = lib.time_s(p)
        assert t > lib.gpu.launch_latency_s
        assert lib.tflops(p) == pytest.approx(p.flops / t / 1e12)


class TestNumericsThroughLibrary:
    def test_planned_schedule_computes_correct_gemm(self, lib4):
        p = GemmProblem(300, 200, 96, dtype=FP16_FP32)
        sched = lib4.build_schedule(p)
        sched.validate()
        a, b = random_operands(p, 0)
        out = sched.execute(a, b)
        ref = reference_gemm(p, a, b)
        assert np.allclose(out, ref, rtol=1e-2, atol=1e-1)

    def test_fp64_library(self):
        lib = StreamKLibrary(HYPOTHETICAL_4SM, FP64)
        p = GemmProblem(200, 150, 100, dtype=FP64)
        sched = lib.build_schedule(p)
        a, b = random_operands(p, 1)
        assert np.allclose(sched.execute(a, b), reference_gemm(p, a, b))


class TestSingleKernelClaim:
    def test_one_blocking_per_precision(self, lib):
        """The library ships exactly one blocking: the dtype default."""
        assert lib.blocking.as_tuple == FP16_FP32.default_blocking

    def test_params_compiled_once(self, lib):
        p1 = lib.params
        assert lib.params is p1  # no re-calibration per call
