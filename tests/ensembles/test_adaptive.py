"""Stream-K++ adaptive selector: differential and safety contracts.

The two tentpole-level guarantees (ISSUE 9, satellite 2):

* **Zero-capacity parity** — an :class:`AdaptiveSelector` built on the
  degenerate ``bits=0`` always-miss filter is *bitwise identical* to
  plain :func:`plan_query` on every GPU preset (provenance excluded by
  plan equality, like every other cache tier).
* **False positives are harmless** — a filter false positive can only
  cost one winner-table probe; selection still returns the correct
  fresh evaluation, never a stale or wrong plan.

Plus the selector mechanics those guarantees rest on: winner-table LRU
eviction mirrored into the filter, foreign-plan refusal, counter
accounting, and the serving integration (``ServeConfig(adaptive=True)``
hot path ahead of the LRU).
"""

import dataclasses

from repro.ensembles.adaptive import (
    AdaptiveConfig,
    AdaptiveSelector,
    Winner,
    analytic_evaluator,
    ensemble_evaluator,
)
from repro.gemm.dtypes import get_dtype_config
from repro.gpu.spec import available_gpus, resolve_gpu
from repro.obs.counters import get_counter, reset_counters
from repro.plan.core import plan_query
from repro.plan.service import PlanService, ServeConfig

_DTYPE = get_dtype_config("fp16_fp32")

# Shapes crossing all three planning regimes on every preset.
_SHAPES = [
    (512, 512, 512),
    (640, 384, 2048),
    (96, 96, 7168),
    (3072, 3072, 256),
]

_ZERO_CAP = AdaptiveConfig(filter_bits=0)


def _selector(gpu_name="a100", config=None, evaluator=None):
    return AdaptiveSelector(
        _DTYPE, resolve_gpu(gpu_name), config or AdaptiveConfig(), evaluator
    )


class TestZeroCapacityParity:
    def test_bitwise_identical_to_plan_query_on_all_presets(self):
        for gpu_name in available_gpus():
            gpu = resolve_gpu(gpu_name)
            selector = AdaptiveSelector(_DTYPE, gpu, _ZERO_CAP)
            for m, n, k in _SHAPES:
                sel = selector.select(m, n, k)
                assert sel.source == "model", gpu_name
                assert sel.plan == plan_query(m, n, k, _DTYPE, gpu), (
                    "zero-capacity selector diverged from plan_query "
                    "for %s on %s" % ((m, n, k), gpu_name)
                )

    def test_repeats_still_fall_through_with_zero_capacity(self):
        selector = _selector(config=_ZERO_CAP)
        first = selector.select(*_SHAPES[0])
        second = selector.select(*_SHAPES[0])
        assert first.source == second.source == "model"
        assert first.plan == second.plan
        assert len(selector) == 0  # max-winner table never populated

    def test_probe_plan_never_hits_with_zero_capacity(self):
        selector = _selector(config=_ZERO_CAP)
        selector.select(*_SHAPES[0])
        assert selector.probe_plan(*_SHAPES[0]) is None


class TestFalsePositiveSafety:
    def test_fp_costs_only_a_table_probe_never_a_wrong_plan(self):
        # One slot, one hash: after any insert, EVERY key false-positives
        # in the filter — the adversarial worst case.
        reset_counters()
        gpu = resolve_gpu("a100")
        selector = _selector(
            config=AdaptiveConfig(filter_bits=1, num_hashes=1)
        )
        selector.select(*_SHAPES[0])
        for m, n, k in _SHAPES[1:]:
            before = get_counter("adaptive.filter_fp")
            sel = selector.select(m, n, k)
            # The filter said "seen", the table said no: counted FP,
            # then a fresh, correct evaluation — never a wrong plan.
            assert get_counter("adaptive.filter_fp") == before + 1
            assert sel.source == "model"
            assert sel.plan == plan_query(m, n, k, _DTYPE, gpu)

    def test_evicted_shape_re_evaluates_correctly(self):
        gpu = resolve_gpu("a100")
        selector = _selector(config=AdaptiveConfig(max_winners=2))
        for m, n, k in _SHAPES[:3]:  # third insert evicts the first
            selector.select(m, n, k)
        assert len(selector) == 2
        sel = selector.select(*_SHAPES[0])
        assert sel.source == "model"
        assert sel.plan == plan_query(*_SHAPES[0], _DTYPE, gpu)


class TestSelectorMechanics:
    def test_repeat_shape_served_from_winner_table(self):
        reset_counters()
        selector = _selector()
        first = selector.select(*_SHAPES[0])
        second = selector.select(*_SHAPES[0])
        assert first.source == "model" and second.source == "winner"
        assert first.winner == second.winner
        assert get_counter("adaptive.hit") == 1
        assert get_counter("adaptive.miss") == 1

    def test_probe_plan_stamps_adaptive_provenance(self):
        gpu = resolve_gpu("a100")
        selector = _selector()
        selector.select(*_SHAPES[0])
        plan = selector.probe_plan(*_SHAPES[0])
        assert plan is not None
        assert plan.provenance == "cache:adaptive"
        # Provenance is excluded from equality: still equals a cold plan.
        assert plan == plan_query(*_SHAPES[0], _DTYPE, gpu)

    def test_lru_eviction_mirrors_into_filter(self):
        reset_counters()
        selector = _selector(config=AdaptiveConfig(max_winners=2))
        for m, n, k in _SHAPES[:3]:
            selector.select(m, n, k)
        assert get_counter("adaptive.evicted") == 1
        # The evicted key's filter membership is deleted (no overflow at
        # this scale), so the probe misses at the filter, not the table.
        before_fp = get_counter("adaptive.filter_fp")
        assert selector.probe(*_SHAPES[0]) is None
        assert get_counter("adaptive.filter_fp") == before_fp

    def test_retouch_promotes_against_eviction(self):
        selector = _selector(config=AdaptiveConfig(max_winners=2))
        selector.select(*_SHAPES[0])
        selector.select(*_SHAPES[1])
        selector.select(*_SHAPES[0])  # touch: now most-recently used
        selector.select(*_SHAPES[2])  # evicts _SHAPES[1], not [0]
        assert selector.probe(*_SHAPES[0]) is not None
        assert selector.probe(*_SHAPES[1]) is None

    def test_forget_removes_filter_and_table(self):
        selector = _selector()
        selector.select(*_SHAPES[0])
        selector.forget(*_SHAPES[0])
        assert selector.probe(*_SHAPES[0]) is None
        assert len(selector) == 0

    def test_foreign_plans_are_refused(self):
        selector = _selector("a100")
        plan = plan_query(*_SHAPES[0], _DTYPE, resolve_gpu("h100_sxm"))
        selector.remember_plan(plan)
        assert len(selector) == 0
        wrong_dtype = dataclasses.replace(
            plan_query(*_SHAPES[0], _DTYPE, resolve_gpu("a100")),
            dtype_name="fp64",
        )
        selector.remember_plan(wrong_dtype)
        assert len(selector) == 0

    def test_ensemble_winner_never_slower_than_analytic(self):
        gpu = resolve_gpu("a100")
        ens = _selector(evaluator=ensemble_evaluator(_DTYPE, gpu))
        ana = _selector(evaluator=analytic_evaluator(_DTYPE, gpu))
        for m, n, k in _SHAPES:
            w_ens = ens.select(m, n, k).winner
            w_ana = ana.select(m, n, k).winner
            assert w_ens.time_s <= w_ana.time_s
            # Both evaluators attach the same analytic plan.
            assert w_ens.plan == w_ana.plan


class TestServiceIntegration:
    def _service(self, **kw):
        return PlanService(
            ServeConfig(
                warm=False, persist=False, batch_window_s=0.0,
                adaptive=True, **kw,
            )
        )

    def test_adaptive_hot_path_ahead_of_lru(self):
        reset_counters()
        with self._service() as svc:
            cold = svc.submit(*_SHAPES[0])
            warm = svc.submit(*_SHAPES[0])
        assert cold.provenance == "model"
        assert warm.provenance == "cache:adaptive"
        assert warm == cold
        assert get_counter("serve.adaptive_hit") == 1
        assert get_counter("serve.adaptive_miss") == 1

    def test_adaptive_disabled_by_default(self):
        reset_counters()
        with PlanService(
            ServeConfig(warm=False, persist=False, batch_window_s=0.0)
        ) as svc:
            svc.submit(*_SHAPES[0])
            plan = svc.submit(*_SHAPES[0])
        assert plan.provenance == "cache:hot"
        assert get_counter("serve.adaptive_hit") == 0
        assert get_counter("serve.adaptive_miss") == 0
        assert svc.stats()["adaptive"] is None

    def test_zero_capacity_service_matches_plain_service(self):
        with self._service(adaptive_filter_bits=0) as svc:
            a = svc.submit(*_SHAPES[1])
            b = svc.submit(*_SHAPES[1])
        with PlanService(
            ServeConfig(warm=False, persist=False, batch_window_s=0.0)
        ) as plain:
            c = plain.submit(*_SHAPES[1])
        assert a == b == c  # provenance differs; plan decision identical

    def test_stats_report_adaptive_block(self):
        with self._service() as svc:
            svc.submit(*_SHAPES[0])
            stats = svc.stats()
        assert stats["adaptive"]["winners"] == 1
        assert stats["adaptive"]["filter_memory_bytes"] > 0
