"""Two-kernel Stream-K ensemble tests (Section 6 future work)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.gemm import FP16_FP32, FP64, GemmProblem, random_operands, reference_gemm
from repro.gpu import A100, HYPOTHETICAL_4SM
from repro.ensembles import StreamKDuoLibrary, small_blocking_for


@pytest.fixture(scope="module")
def duo():
    return StreamKDuoLibrary(A100, FP16_FP32)


class TestDispatch:
    def test_exactly_two_kernels(self, duo):
        assert duo.num_kernels == 2
        assert duo.big.blocking.as_tuple == (128, 128, 32)
        assert duo.small.blocking.as_tuple == small_blocking_for(FP16_FP32).as_tuple

    def test_small_blocking_is_smallest_oracle_member(self):
        # (64,64,64) and (64,128,32) tie on MACs; the first listed wins.
        assert small_blocking_for(FP16_FP32).as_tuple == (64, 64, 64)
        assert small_blocking_for(FP64).as_tuple == (32, 32, 16)

    def test_memory_bound_dispatches_small(self, duo):
        p = GemmProblem(256, 256, 256, dtype=FP16_FP32)
        assert not p.is_compute_bound
        assert duo.choose(p) == "small"

    def test_compute_bound_dispatches_big(self, duo):
        p = GemmProblem(4096, 4096, 4096, dtype=FP16_FP32)
        assert p.is_compute_bound
        assert duo.choose(p) == "big"

    def test_unknown_dtype_rejected(self):
        import dataclasses
        weird = dataclasses.replace(FP64, name="fp128")
        with pytest.raises(ConfigurationError):
            small_blocking_for(weird)


class TestBehaviour:
    def test_identical_to_single_kernel_when_compute_bound(self, duo):
        p = GemmProblem(4096, 4096, 4096, dtype=FP16_FP32)
        assert duo.time_s(p) == pytest.approx(duo.big.time_s(p))

    def test_helps_in_memory_bound_regime(self, duo):
        """The whole point of the second kernel: sub-threshold shapes run
        faster than the big-tile singleton would."""
        wins = 0
        for shape in [(256, 256, 256), (384, 256, 512), (512, 384, 384)]:
            p = GemmProblem(*shape, dtype=FP16_FP32)
            assert duo.choose(p) == "small"
            if duo.time_s(p) < duo.big.time_s(p):
                wins += 1
        assert wins >= 2

    def test_small_kernel_efficiency_honestly_derated(self, duo):
        """The alternate blocking must NOT inherit the big tile's 99%
        efficiency anchor (that would be cooking the books)."""
        assert duo.small.cost.pipeline_efficiency < 0.7
        assert duo.big.cost.pipeline_efficiency == pytest.approx(0.99, abs=1e-6)

    def test_schedules_still_numerically_exact(self):
        duo4 = StreamKDuoLibrary(HYPOTHETICAL_4SM, FP64)
        p = GemmProblem(100, 90, 70, dtype=FP64)
        sched = duo4.build_schedule(p)
        sched.validate()
        a, b = random_operands(p, 0)
        assert np.allclose(sched.execute(a, b), reference_gemm(p, a, b))

    def test_plan_reports_chosen_kernel(self, duo):
        choice = duo.plan(GemmProblem(256, 256, 256, dtype=FP16_FP32))
        assert choice.kernel == "small"
        assert choice.time_s > 0
        assert choice.plan.g >= 1
