"""Partial-sum workspace protocol tests: flag discipline must be enforced."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.gemm import PartialStore


@pytest.fixture
def store():
    return PartialStore(4)


class TestProtocol:
    def test_store_signal_load_roundtrip(self, store):
        acc = np.arange(6.0).reshape(2, 3)
        store.store_partials(1, acc)
        store.signal(1)
        out = store.load_partials(1)
        assert np.array_equal(out, acc)

    def test_store_copies_buffer(self, store):
        acc = np.ones((2, 2))
        store.store_partials(0, acc)
        acc[:] = 99.0
        store.signal(0)
        assert store.load_partials(0).max() == 1.0

    def test_double_store_rejected(self, store):
        store.store_partials(2, np.zeros((1, 1)))
        with pytest.raises(SimulationError, match="twice"):
            store.store_partials(2, np.zeros((1, 1)))

    def test_signal_before_store_rejected(self, store):
        with pytest.raises(SimulationError, match="before storing"):
            store.signal(0)

    def test_wait_unsignalled_rejected(self, store):
        store.store_partials(3, np.zeros((1, 1)))
        with pytest.raises(SimulationError, match="never signalled"):
            store.wait(3)

    def test_load_unsignalled_rejected(self, store):
        store.store_partials(3, np.zeros((1, 1)))
        with pytest.raises(SimulationError):
            store.load_partials(3)

    def test_slot_bounds(self, store):
        with pytest.raises(SimulationError):
            store.store_partials(4, np.zeros((1, 1)))
        with pytest.raises(SimulationError):
            store.wait(-1)


class TestIntrospection:
    def test_traffic_counters(self, store):
        for slot in (0, 2):
            store.store_partials(slot, np.zeros((2, 2)))
            store.signal(slot)
        store.load_partials(0)
        assert store.stores == 2
        assert store.loads == 1

    def test_outstanding_lists_signalled_slots(self, store):
        store.store_partials(1, np.zeros((1, 1)))
        store.signal(1)
        store.store_partials(2, np.zeros((1, 1)))  # stored, never signalled
        assert store.outstanding() == [1]

    def test_num_slots(self, store):
        assert store.num_slots == 4

    def test_negative_slot_count_rejected(self):
        with pytest.raises(SimulationError):
            PartialStore(-1)
