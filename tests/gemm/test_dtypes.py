"""Precision configuration tests."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.gemm.dtypes import (
    BF16_FP32,
    DTYPE_CONFIGS,
    FP16_FP32,
    FP32,
    FP64,
    DtypeConfig,
    get_dtype_config,
)


class TestPaperConfigurations:
    def test_fp64_blocking_matches_paper(self):
        assert FP64.default_blocking == (64, 64, 16)

    def test_fp16_blocking_matches_paper(self):
        assert FP16_FP32.default_blocking == (128, 128, 32)

    def test_fp64_peak_matches_paper(self):
        assert FP64.peak_tflops_a100 == pytest.approx(13.9)

    def test_fp16_peak_matches_paper(self):
        assert FP16_FP32.peak_tflops_a100 == pytest.approx(222.3)

    def test_compute_bound_thresholds_match_paper(self):
        assert FP64.compute_bound_ops_per_byte == 150.0
        assert FP16_FP32.compute_bound_ops_per_byte == 400.0

    def test_fp16_mixed_precision_dtypes(self):
        assert FP16_FP32.input_dtype == np.dtype(np.float16)
        assert FP16_FP32.accum_dtype == np.dtype(np.float32)

    def test_fp64_element_sizes(self):
        assert FP64.input_bytes == 8
        assert FP64.output_bytes == 8

    def test_fp16_element_sizes(self):
        assert FP16_FP32.input_bytes == 2
        assert FP16_FP32.output_bytes == 4

    def test_bf16_storage_is_two_bytes(self):
        assert BF16_FP32.input_bytes == 2


class TestRegistry:
    def test_all_configs_registered(self):
        assert set(DTYPE_CONFIGS) == {"fp64", "fp16_fp32", "fp32", "bf16_fp32"}

    @pytest.mark.parametrize("name", sorted(DTYPE_CONFIGS))
    def test_lookup_roundtrip(self, name):
        assert get_dtype_config(name).name == name

    def test_unknown_name_raises_with_choices(self):
        with pytest.raises(ConfigurationError, match="fp64"):
            get_dtype_config("fp8")


class TestValidation:
    def test_negative_bytes_rejected(self):
        with pytest.raises(ConfigurationError):
            DtypeConfig(
                name="bad",
                input_dtype=np.dtype(np.float32),
                accum_dtype=np.dtype(np.float32),
                input_bytes=0,
                output_bytes=4,
                default_blocking=(64, 64, 16),
                peak_tflops_a100=10.0,
                compute_bound_ops_per_byte=100.0,
            )

    def test_bad_blocking_rejected(self):
        with pytest.raises(ConfigurationError):
            DtypeConfig(
                name="bad",
                input_dtype=np.dtype(np.float32),
                accum_dtype=np.dtype(np.float32),
                input_bytes=4,
                output_bytes=4,
                default_blocking=(64, -1, 16),
                peak_tflops_a100=10.0,
                compute_bound_ops_per_byte=100.0,
            )

    def test_zero_peak_rejected(self):
        with pytest.raises(ConfigurationError):
            DtypeConfig(
                name="bad",
                input_dtype=np.dtype(np.float32),
                accum_dtype=np.dtype(np.float32),
                input_bytes=4,
                output_bytes=4,
                default_blocking=(64, 64, 16),
                peak_tflops_a100=0.0,
                compute_bound_ops_per_byte=100.0,
            )

    def test_configs_are_frozen(self):
        with pytest.raises(AttributeError):
            FP64.input_bytes = 4

    def test_efficiency_exponent_defaults(self):
        assert FP64.efficiency_exponent == 1.0
        assert FP16_FP32.efficiency_exponent > 1.0
