"""GemmProblem accounting and validation tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.gemm import FP16_FP32, FP64, GemmProblem


class TestAccounting:
    def test_macs_and_flops(self):
        p = GemmProblem(3, 5, 7, dtype=FP64)
        assert p.macs == 105
        assert p.flops == 210

    def test_input_bytes_fp64(self):
        p = GemmProblem(4, 6, 8, dtype=FP64)
        assert p.input_bytes == (4 * 8 + 8 * 6) * 8

    def test_output_bytes_beta_zero(self):
        p = GemmProblem(4, 6, 8, dtype=FP16_FP32)
        assert p.output_bytes == 4 * 6 * 4

    def test_output_bytes_beta_nonzero_doubles(self):
        p = GemmProblem(4, 6, 8, dtype=FP16_FP32, beta=0.5)
        assert p.output_bytes == 2 * 4 * 6 * 4

    def test_ops_per_byte_known_value(self):
        # 512-cube fp16: flops = 2*512^3; bytes = 2*512^2*2*2 + 512^2*4.
        p = GemmProblem(512, 512, 512, dtype=FP16_FP32)
        flops = 2 * 512**3
        bytes_ = 2 * (512 * 512 * 2) + 512 * 512 * 4
        assert p.ops_per_byte == pytest.approx(flops / bytes_)

    def test_compute_bound_classification_boundary(self):
        small = GemmProblem(128, 128, 128, dtype=FP16_FP32)
        large = GemmProblem(4096, 4096, 4096, dtype=FP16_FP32)
        assert not small.is_compute_bound
        assert large.is_compute_bound

    @given(
        m=st.integers(1, 512),
        n=st.integers(1, 512),
        k=st.integers(1, 512),
    )
    def test_intensity_positive_and_bounded(self, m, n, k):
        p = GemmProblem(m, n, k, dtype=FP64)
        # 2mnk flops over at least max-operand bytes: intensity is finite
        # and below the unreachable all-reuse bound min(m, n, k) * 2 / 8 +.
        assert 0 < p.ops_per_byte < 2 * min(m, n, k)


class TestValidation:
    @pytest.mark.parametrize("bad", [0, -1])
    @pytest.mark.parametrize("axis", ["m", "n", "k"])
    def test_nonpositive_extent_rejected(self, axis, bad):
        kwargs = {"m": 4, "n": 4, "k": 4}
        kwargs[axis] = bad
        with pytest.raises(ConfigurationError, match=axis):
            GemmProblem(**kwargs)

    def test_non_integer_extent_rejected(self):
        with pytest.raises(ConfigurationError):
            GemmProblem(4.5, 4, 4)

    def test_bool_extent_rejected(self):
        with pytest.raises(ConfigurationError):
            GemmProblem(True, 4, 4)


class TestConvenience:
    def test_shape_tuple(self):
        assert GemmProblem(2, 3, 4).shape == (2, 3, 4)

    def test_with_dtype_preserves_geometry_and_scalars(self):
        p = GemmProblem(2, 3, 4, dtype=FP16_FP32, alpha=2.0, beta=1.0)
        q = p.with_dtype(FP64)
        assert q.shape == p.shape
        assert q.dtype is FP64
        assert q.alpha == 2.0 and q.beta == 1.0

    def test_default_dtype_is_fp16_fp32(self):
        assert GemmProblem(2, 3, 4).dtype is FP16_FP32
