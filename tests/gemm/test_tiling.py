"""Blocking / TileGrid bookkeeping tests, including ragged edges."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.gemm import FP64, Blocking, GemmProblem, TileGrid, ceil_div


class TestCeilDiv:
    @pytest.mark.parametrize(
        "a,b,expect", [(0, 4, 0), (1, 4, 1), (4, 4, 1), (5, 4, 2), (8, 4, 2)]
    )
    def test_known_values(self, a, b, expect):
        assert ceil_div(a, b) == expect

    @given(a=st.integers(0, 10**6), b=st.integers(1, 10**4))
    def test_matches_float_ceiling(self, a, b):
        assert ceil_div(a, b) == -(-a // b) == (a + b - 1) // b


class TestBlocking:
    def test_tile_macs(self):
        assert Blocking(4, 5, 6).tile_macs == 120

    def test_as_tuple(self):
        assert Blocking(1, 2, 3).as_tuple == (1, 2, 3)

    @pytest.mark.parametrize("bad", [(0, 4, 4), (4, -2, 4), (4, 4, 0)])
    def test_nonpositive_rejected(self, bad):
        with pytest.raises(ConfigurationError):
            Blocking(*bad)


class TestTileGridExact:
    """100x70x53 with 16x16x8 blocking: ragged on every axis."""

    @pytest.fixture
    def grid(self):
        return TileGrid(GemmProblem(100, 70, 53, dtype=FP64), Blocking(16, 16, 8))

    def test_tile_counts(self, grid):
        assert grid.tiles_m == 7  # ceil(100/16)
        assert grid.tiles_n == 5  # ceil(70/16)
        assert grid.num_tiles == 35

    def test_iters_per_tile(self, grid):
        assert grid.iters_per_tile == 7  # ceil(53/8)

    def test_total_iters(self, grid):
        assert grid.total_iters == 35 * 7

    def test_interior_tile_extents(self, grid):
        ms, ns = grid.tile_extents(0)
        assert (ms.start, ms.stop) == (0, 16)
        assert (ns.start, ns.stop) == (0, 16)

    def test_edge_tile_clamped(self, grid):
        last = grid.num_tiles - 1
        ms, ns = grid.tile_extents(last)
        assert ms.stop == 100 and ms.stop - ms.start == 100 - 6 * 16
        assert ns.stop == 70 and ns.stop - ns.start == 70 - 4 * 16

    def test_last_k_iter_clamped(self, grid):
        ks = grid.iter_k_extent(6)
        assert (ks.start, ks.stop) == (48, 53)

    def test_k_range_spans_iters(self, grid):
        ks = grid.k_range_extent(2, 5)
        assert (ks.start, ks.stop) == (16, 40)

    def test_k_range_clamped_at_end(self, grid):
        ks = grid.k_range_extent(5, 7)
        assert (ks.start, ks.stop) == (40, 53)

    def test_empty_k_range(self, grid):
        ks = grid.k_range_extent(3, 3)
        assert ks.start == ks.stop == 24

    def test_tile_mac_count_edge(self, grid):
        last = grid.num_tiles - 1
        assert grid.tile_mac_count(last) == 4 * 6 * 53

    def test_fragment_and_output_bytes(self, grid):
        assert grid.fragment_bytes_a() == 16 * 8 * 8
        assert grid.fragment_bytes_b() == 8 * 16 * 8
        assert grid.tile_output_bytes() == 16 * 16 * 8


class TestCoordinateRoundtrip:
    @given(
        tiles_m=st.integers(1, 20),
        tiles_n=st.integers(1, 20),
        data=st.data(),
    )
    def test_coords_index_bijection(self, tiles_m, tiles_n, data):
        grid = TileGrid(
            GemmProblem(tiles_m * 8, tiles_n * 8, 8, dtype=FP64),
            Blocking(8, 8, 8),
        )
        idx = data.draw(st.integers(0, grid.num_tiles - 1))
        row, col = grid.tile_coords(idx)
        assert grid.tile_index(row, col) == idx
        assert 0 <= row < tiles_m and 0 <= col < tiles_n

    @given(
        m=st.integers(1, 300),
        n=st.integers(1, 300),
        k=st.integers(1, 300),
        bm=st.integers(1, 64),
        bn=st.integers(1, 64),
        bk=st.integers(1, 64),
    )
    def test_tiles_cover_output_exactly(self, m, n, k, bm, bn, bk):
        """Union of tile extents is a disjoint exact cover of (m, n)."""
        grid = TileGrid(GemmProblem(m, n, k, dtype=FP64), Blocking(bm, bn, bk))
        covered = 0
        for t in range(grid.num_tiles):
            ms, ns = grid.tile_extents(t)
            assert ms.stop > ms.start and ns.stop > ns.start
            covered += (ms.stop - ms.start) * (ns.stop - ns.start)
        assert covered == m * n


class TestErrors:
    def test_tile_index_out_of_range(self, small_grid):
        with pytest.raises(ConfigurationError):
            small_grid.tile_extents(small_grid.num_tiles)

    def test_negative_tile_index(self, small_grid):
        with pytest.raises(ConfigurationError):
            small_grid.tile_coords(-1)

    def test_bad_tile_coordinates(self, small_grid):
        with pytest.raises(ConfigurationError):
            small_grid.tile_index(small_grid.tiles_m, 0)

    def test_iter_out_of_range(self, small_grid):
        with pytest.raises(ConfigurationError):
            small_grid.iter_k_extent(small_grid.iters_per_tile)

    def test_inverted_k_range(self, small_grid):
        with pytest.raises(ConfigurationError):
            small_grid.k_range_extent(3, 2)
