"""Reference GEMM tests: Algorithm 1 against the numpy oracle."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.gemm import (
    FP16_FP32,
    FP64,
    Blocking,
    GemmProblem,
    cache_blocked_gemm,
    random_operands,
    reference_gemm,
)


class TestReferenceGemm:
    def test_matches_numpy(self):
        p = GemmProblem(13, 17, 19, dtype=FP64)
        a, b = random_operands(p, 0)
        assert np.allclose(reference_gemm(p, a, b), a @ b)

    def test_alpha_beta(self):
        p = GemmProblem(5, 6, 7, dtype=FP64, alpha=2.5, beta=-0.5)
        a, b = random_operands(p, 0)
        c = np.ones((5, 6))
        expect = 2.5 * (a @ b) - 0.5 * c
        assert np.allclose(reference_gemm(p, a, b, c), expect)

    def test_upcasts_half_inputs(self):
        p = GemmProblem(8, 8, 8, dtype=FP16_FP32)
        a, b = random_operands(p, 0)
        out = reference_gemm(p, a, b)
        assert out.dtype == np.float64

    def test_beta_without_c_rejected(self):
        p = GemmProblem(4, 4, 4, dtype=FP64, beta=1.0)
        a, b = random_operands(p, 0)
        with pytest.raises(ConfigurationError):
            reference_gemm(p, a, b)

    @pytest.mark.parametrize(
        "shape_a,shape_b",
        [((5, 4), (4, 6)), ((4, 5), (5, 7))],
    )
    def test_wrong_operand_shapes_rejected(self, shape_a, shape_b):
        p = GemmProblem(4, 6, 5, dtype=FP64)
        a = np.zeros(shape_a)
        b = np.zeros(shape_b)
        if shape_a != (4, 5) or shape_b != (5, 6):
            with pytest.raises(ConfigurationError):
                reference_gemm(p, a, b)


class TestCacheBlockedGemm:
    """Paper Algorithm 1 must agree with the oracle on ragged shapes."""

    @pytest.mark.parametrize(
        "m,n,k,blk",
        [
            (16, 16, 16, (8, 8, 8)),  # exact multiples
            (17, 19, 23, (8, 8, 8)),  # ragged everywhere
            (5, 5, 5, (16, 16, 16)),  # blocking larger than problem
            (64, 1, 100, (16, 16, 8)),  # degenerate n
            (1, 64, 3, (16, 16, 8)),  # degenerate m
        ],
    )
    def test_matches_reference_fp64(self, m, n, k, blk):
        p = GemmProblem(m, n, k, dtype=FP64)
        a, b = random_operands(p, 2)
        out = cache_blocked_gemm(p, a, b, Blocking(*blk))
        assert np.allclose(out, reference_gemm(p, a, b), rtol=1e-12)

    def test_matches_reference_fp16(self):
        p = GemmProblem(33, 29, 40, dtype=FP16_FP32)
        a, b = random_operands(p, 3)
        out = cache_blocked_gemm(p, a, b, Blocking(16, 16, 8))
        ref = reference_gemm(p, a, b)
        assert np.allclose(out, ref, rtol=1e-2, atol=1e-2)

    def test_alpha_scaling(self):
        p = GemmProblem(8, 8, 8, dtype=FP64, alpha=3.0)
        a, b = random_operands(p, 4)
        out = cache_blocked_gemm(p, a, b, Blocking(4, 4, 4))
        assert np.allclose(out, 3.0 * (a.astype(np.float64) @ b))

    def test_beta_accumulation(self):
        p = GemmProblem(8, 8, 8, dtype=FP64, beta=2.0)
        a, b = random_operands(p, 5)
        c = np.full((8, 8), 1.5)
        out = cache_blocked_gemm(p, a, b, Blocking(4, 4, 4), c=c)
        assert np.allclose(out, a @ b + 2.0 * c)

    def test_default_blocking_from_dtype(self):
        p = GemmProblem(70, 70, 20, dtype=FP64)
        a, b = random_operands(p, 6)
        out = cache_blocked_gemm(p, a, b)  # uses 64x64x16
        assert np.allclose(out, reference_gemm(p, a, b))

    @settings(max_examples=25, deadline=None)
    @given(
        m=st.integers(1, 60),
        n=st.integers(1, 60),
        k=st.integers(1, 60),
        bm=st.integers(1, 20),
        bn=st.integers(1, 20),
        bk=st.integers(1, 20),
    )
    def test_property_any_blocking_is_exact(self, m, n, k, bm, bn, bk):
        p = GemmProblem(m, n, k, dtype=FP64)
        a, b = random_operands(p, 7)
        out = cache_blocked_gemm(p, a, b, Blocking(bm, bn, bk))
        assert np.allclose(out, reference_gemm(p, a, b), rtol=1e-12, atol=1e-12)


class TestRandomOperands:
    def test_deterministic(self, small_problem):
        a1, b1 = random_operands(small_problem, 42)
        a2, b2 = random_operands(small_problem, 42)
        assert np.array_equal(a1, a2) and np.array_equal(b1, b2)

    def test_seed_changes_data(self, small_problem):
        a1, _ = random_operands(small_problem, 1)
        a2, _ = random_operands(small_problem, 2)
        assert not np.array_equal(a1, a2)

    def test_dtype_and_range(self, fp16_problem):
        a, b = random_operands(fp16_problem, 0)
        assert a.dtype == np.float16 and b.dtype == np.float16
        assert float(np.abs(a).max()) <= 1.0
