"""Epilogue tests: StoreTile with alpha/beta and shape policing."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.gemm import (
    FP64,
    Blocking,
    GemmProblem,
    TileGrid,
    mac_loop,
    make_output,
    random_operands,
    store_tile,
)


def build(alpha=1.0, beta=0.0):
    p = GemmProblem(20, 12, 9, dtype=FP64, alpha=alpha, beta=beta)
    return TileGrid(p, Blocking(8, 8, 4))


class TestStoreTile:
    def test_plain_store(self):
        grid = build()
        a, b = random_operands(grid.problem, 0)
        out = make_output(grid.problem)
        for tile in range(grid.num_tiles):
            acc = mac_loop(grid, a, b, tile, 0, grid.iters_per_tile)
            store_tile(grid, out, tile, acc)
        assert np.allclose(out, a @ b)

    def test_alpha_scales(self):
        grid = build(alpha=2.0)
        a, b = random_operands(grid.problem, 1)
        out = make_output(grid.problem)
        for tile in range(grid.num_tiles):
            acc = mac_loop(grid, a, b, tile, 0, grid.iters_per_tile)
            store_tile(grid, out, tile, acc)
        assert np.allclose(out, 2.0 * (a @ b))

    def test_beta_reads_original_c(self):
        grid = build(beta=0.5)
        a, b = random_operands(grid.problem, 2)
        c_in = np.full((20, 12), 4.0)
        out = make_output(grid.problem)
        for tile in range(grid.num_tiles):
            acc = mac_loop(grid, a, b, tile, 0, grid.iters_per_tile)
            store_tile(grid, out, tile, acc, c_in=c_in)
        assert np.allclose(out, a @ b + 0.5 * c_in)

    def test_beta_store_is_idempotent(self):
        """Repeated stores must not re-accumulate beta*C (reads c_in, not out)."""
        grid = build(beta=1.0)
        a, b = random_operands(grid.problem, 3)
        c_in = np.ones((20, 12))
        out = make_output(grid.problem)
        acc = mac_loop(grid, a, b, 0, 0, grid.iters_per_tile)
        store_tile(grid, out, 0, acc, c_in=c_in)
        first = out.copy()
        store_tile(grid, out, 0, acc, c_in=c_in)
        assert np.array_equal(out, first)

    def test_wrong_accumulator_shape_rejected(self):
        grid = build()
        out = make_output(grid.problem)
        with pytest.raises(ConfigurationError, match="extents"):
            store_tile(grid, out, 0, np.zeros((4, 4)))

    def test_beta_without_c_rejected(self):
        grid = build(beta=1.0)
        out = make_output(grid.problem)
        with pytest.raises(ConfigurationError, match="C input"):
            store_tile(grid, out, 0, np.zeros((8, 8)))

    def test_make_output_dtype(self):
        grid = build()
        out = make_output(grid.problem)
        assert out.shape == (20, 12)
        assert out.dtype == grid.problem.dtype.accum_dtype
