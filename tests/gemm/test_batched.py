"""Batched GEMM tests."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.gemm import FP16_FP32, FP64, execute_batched, plan_batched
from repro.gpu import HYPOTHETICAL_4SM


class TestPlanBatched:
    def test_flattened_geometry(self):
        plan = plan_batched(16, 128, 64, 2048, FP16_FP32)
        assert plan.flattened.m == 16 * 128
        assert plan.total_flops == 16 * 2 * 128 * 64 * 2048

    def test_batch_fills_machine_where_item_cannot(self):
        """A one-tile item leaves 107 SMs idle; batching balances the
        aggregate iteration space — work-centric scheduling one level up."""
        plan = plan_batched(64, 128, 128, 2048, FP16_FP32)
        assert plan.g > 32  # far more parallelism than one item's 1 tile

    def test_unaligned_m_rejected(self):
        with pytest.raises(ConfigurationError, match="multiple of BLK_M"):
            plan_batched(4, 100, 64, 512, FP16_FP32)

    def test_nonpositive_batch_rejected(self):
        with pytest.raises(ConfigurationError):
            plan_batched(0, 128, 64, 512, FP16_FP32)


class TestExecuteBatched:
    def test_shared_b(self):
        plan = plan_batched(6, 64, 48, 80, FP64, gpu=HYPOTHETICAL_4SM)
        rng = np.random.default_rng(0)
        a = rng.random((6, 64, 80))
        b = rng.random((80, 48))
        out, time_s = execute_batched(plan, a, b, gpu=HYPOTHETICAL_4SM)
        assert time_s > 0
        for i in range(6):
            assert np.allclose(out[i], a[i] @ b)

    def test_per_item_b(self):
        plan = plan_batched(3, 64, 32, 40, FP64, gpu=HYPOTHETICAL_4SM)
        rng = np.random.default_rng(1)
        a = rng.random((3, 64, 40))
        b = rng.random((3, 40, 32))
        out, _ = execute_batched(plan, a, b, gpu=HYPOTHETICAL_4SM)
        for i in range(3):
            assert np.allclose(out[i], a[i] @ b[i])

    def test_shape_policing(self):
        plan = plan_batched(3, 64, 32, 40, FP64, gpu=HYPOTHETICAL_4SM)
        with pytest.raises(ConfigurationError):
            execute_batched(plan, np.zeros((2, 64, 40)), np.zeros((40, 32)))
        with pytest.raises(ConfigurationError):
            execute_batched(plan, np.zeros((3, 64, 40)), np.zeros((40, 31)))
        with pytest.raises(ConfigurationError):
            execute_batched(plan, np.zeros((3, 64, 40)), np.zeros((2, 40, 32)))

    def test_batched_amortizes_vs_sequential_items(self):
        """One stacked launch beats launching the item kernel per element
        (launch latency + quantization amortize)."""
        from repro.ensembles import StreamKLibrary
        from repro.gemm import GemmProblem
        from repro.gpu import A100

        plan = plan_batched(32, 128, 128, 1024, FP16_FP32, gpu=A100)
        rng = np.random.default_rng(2)
        a = rng.random((32, 128, 1024)).astype(np.float16)
        b = rng.random((1024, 128)).astype(np.float16)
        _, batched_time = execute_batched(plan, a, b, gpu=A100)
        lib = StreamKLibrary(A100, FP16_FP32)
        sequential = 32 * lib.time_s(GemmProblem(128, 128, 1024, dtype=FP16_FP32))
        assert batched_time < sequential
