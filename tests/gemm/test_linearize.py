"""Tile traversal tests: row-major identity and Morton Z-order."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.gemm.linearize import (
    MortonTraversal,
    RowMajorTraversal,
    get_traversal,
    morton_decode,
    morton_encode,
)


class TestMortonCodes:
    @pytest.mark.parametrize(
        "row,col,code",
        [(0, 0, 0), (0, 1, 1), (1, 0, 2), (1, 1, 3), (0, 2, 4), (2, 0, 8), (3, 3, 15)],
    )
    def test_known_codes(self, row, col, code):
        assert morton_encode(row, col) == code

    @given(row=st.integers(0, 2**20), col=st.integers(0, 2**20))
    def test_encode_decode_roundtrip(self, row, col):
        assert morton_decode(morton_encode(row, col)) == (row, col)

    @given(
        a=st.tuples(st.integers(0, 1000), st.integers(0, 1000)),
        b=st.tuples(st.integers(0, 1000), st.integers(0, 1000)),
    )
    def test_codes_injective(self, a, b):
        if a != b:
            assert morton_encode(*a) != morton_encode(*b)


class TestTraversalBijection:
    @given(tiles_m=st.integers(1, 12), tiles_n=st.integers(1, 12))
    def test_row_major_is_identity(self, tiles_m, tiles_n):
        tr = RowMajorTraversal(tiles_m, tiles_n)
        assert tr.order() == list(range(tiles_m * tiles_n))

    @given(tiles_m=st.integers(1, 12), tiles_n=st.integers(1, 12))
    def test_morton_is_permutation(self, tiles_m, tiles_n):
        tr = MortonTraversal(tiles_m, tiles_n)
        order = tr.order()
        assert sorted(order) == list(range(tiles_m * tiles_n))

    @given(tiles_m=st.integers(1, 12), tiles_n=st.integers(1, 12), data=st.data())
    def test_morton_position_inverse(self, tiles_m, tiles_n, data):
        tr = MortonTraversal(tiles_m, tiles_n)
        pos = data.draw(st.integers(0, tr.num_tiles - 1))
        assert tr.position_of(tr.tile_at(pos)) == pos

    def test_morton_square_locality(self):
        """On a 4x4 grid the first four Z-order tiles form the top-left 2x2."""
        tr = MortonTraversal(4, 4)
        first_four = {tr.tile_at(p) for p in range(4)}
        assert first_four == {0, 1, 4, 5}


class TestFactoryAndErrors:
    def test_factory_names(self):
        assert isinstance(get_traversal("row_major", 2, 2), RowMajorTraversal)
        assert isinstance(get_traversal("morton", 2, 2), MortonTraversal)

    def test_unknown_name(self):
        with pytest.raises(ConfigurationError, match="morton"):
            get_traversal("hilbert", 2, 2)

    def test_empty_grid_rejected(self):
        with pytest.raises(ConfigurationError):
            RowMajorTraversal(0, 4)

    def test_position_out_of_range(self):
        tr = RowMajorTraversal(2, 2)
        with pytest.raises(ConfigurationError):
            tr.tile_at(4)

    def test_tile_out_of_range(self):
        tr = MortonTraversal(2, 2)
        with pytest.raises(ConfigurationError):
            tr.position_of(-1)
