"""High-level gemm() entry-point tests."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.gemm import FP16_FP32, FP64, GemmProblem, gemm, random_operands
from repro.gpu import HYPOTHETICAL_4SM


@pytest.fixture
def fp64_ops():
    p = GemmProblem(96, 80, 64, dtype=FP64)
    return random_operands(p, 0)


class TestGemm:
    def test_plain_product(self, fp64_ops):
        a, b = fp64_ops
        r = gemm(a, b, gpu=HYPOTHETICAL_4SM)
        assert np.allclose(r.c, a @ b)
        assert r.problem.dtype is FP64  # inferred from float64 operands
        assert r.time_s > 0 and r.tflops > 0

    def test_alpha_beta(self, fp64_ops):
        a, b = fp64_ops
        c = np.ones((96, 80))
        r = gemm(a, b, alpha=2.0, beta=0.5, c=c, gpu=HYPOTHETICAL_4SM)
        assert np.allclose(r.c, 2.0 * (a @ b) + 0.5 * c)

    def test_transpose_flags(self, fp64_ops):
        a, b = fp64_ops
        expect = a @ b
        r_tn = gemm(np.ascontiguousarray(a.T), b, transpose_a=True, gpu=HYPOTHETICAL_4SM)
        r_nt = gemm(a, np.ascontiguousarray(b.T), transpose_b=True, gpu=HYPOTHETICAL_4SM)
        r_tt = gemm(
            np.ascontiguousarray(a.T),
            np.ascontiguousarray(b.T),
            transpose_a=True,
            transpose_b=True,
            gpu=HYPOTHETICAL_4SM,
        )
        for r in (r_tn, r_nt, r_tt):
            assert np.allclose(r.c, expect)

    def test_fp16_inference(self):
        p = GemmProblem(64, 64, 128, dtype=FP16_FP32)
        a, b = random_operands(p, 1)
        r = gemm(a, b, gpu=HYPOTHETICAL_4SM)
        assert r.problem.dtype is FP16_FP32
        assert r.c.dtype == np.float32

    def test_plan_kind_exposed(self, fp64_ops):
        a, b = fp64_ops
        r = gemm(a, b, gpu=HYPOTHETICAL_4SM)
        assert r.plan_kind in ("data_parallel", "basic_stream_k", "two_tile")
        assert r.g >= 1

    def test_mismatched_inner_dims_rejected(self):
        with pytest.raises(ConfigurationError, match="inner dimensions"):
            gemm(np.zeros((4, 5)), np.zeros((6, 4)), gpu=HYPOTHETICAL_4SM)

    def test_mixed_dtypes_rejected(self):
        with pytest.raises(ConfigurationError, match="differ"):
            gemm(
                np.zeros((4, 5), dtype=np.float64),
                np.zeros((5, 4), dtype=np.float16),
                gpu=HYPOTHETICAL_4SM,
            )

    def test_non_matrix_rejected(self):
        with pytest.raises(ConfigurationError):
            gemm(np.zeros(5), np.zeros((5, 4)), gpu=HYPOTHETICAL_4SM)

    def test_unknown_input_dtype_rejected(self):
        with pytest.raises(ConfigurationError, match="pass dtype"):
            gemm(
                np.zeros((4, 5), dtype=np.int32),
                np.zeros((5, 4), dtype=np.int32),
                gpu=HYPOTHETICAL_4SM,
            )
