"""MacLoop tests: the associativity property every split relies on."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.gemm import (
    FP64,
    Blocking,
    GemmProblem,
    TileGrid,
    mac_loop,
    mac_loop_fragments,
    random_operands,
)


@pytest.fixture
def grid():
    return TileGrid(GemmProblem(40, 24, 37, dtype=FP64), Blocking(16, 8, 4))


@pytest.fixture
def ab(grid):
    return random_operands(grid.problem, 11)


class TestMacLoop:
    def test_full_range_equals_tile_product(self, grid, ab):
        a, b = ab
        for tile in range(grid.num_tiles):
            ms, ns = grid.tile_extents(tile)
            acc = mac_loop(grid, a, b, tile, 0, grid.iters_per_tile)
            assert np.allclose(acc, a[ms, :] @ b[:, ns])

    def test_empty_range_is_zero(self, grid, ab):
        a, b = ab
        acc = mac_loop(grid, a, b, 0, 3, 3)
        assert acc.shape == (16, 8)
        assert not acc.any()

    def test_partition_sums_to_full(self, grid, ab):
        """Associativity: any split of [0, iters) reassembles the tile."""
        a, b = ab
        ipt = grid.iters_per_tile
        full = mac_loop(grid, a, b, 0, 0, ipt)
        for cut in range(ipt + 1):
            partial = mac_loop(grid, a, b, 0, 0, cut) + mac_loop(
                grid, a, b, 0, cut, ipt
            )
            assert np.allclose(partial, full)

    @settings(max_examples=30, deadline=None)
    @given(data=st.data())
    def test_property_multiway_partition(self, data):
        # Built inline (not via fixtures): hypothesis reuses the test body
        # across examples and function-scoped fixtures would not reset.
        grid = TileGrid(GemmProblem(40, 24, 37, dtype=FP64), Blocking(16, 8, 4))
        a, b = random_operands(grid.problem, 11)
        ipt = grid.iters_per_tile
        tile = data.draw(st.integers(0, grid.num_tiles - 1))
        n_cuts = data.draw(st.integers(0, ipt))
        cuts = sorted(
            data.draw(
                st.lists(
                    st.integers(0, ipt), min_size=n_cuts, max_size=n_cuts
                )
            )
        )
        bounds = [0] + cuts + [ipt]
        acc = sum(
            mac_loop(grid, a, b, tile, lo, hi)
            for lo, hi in zip(bounds, bounds[1:])
        )
        assert np.allclose(acc, mac_loop(grid, a, b, tile, 0, ipt))

    def test_edge_tile_shape_clamped(self, grid, ab):
        a, b = ab
        last = grid.num_tiles - 1
        acc = mac_loop(grid, a, b, last, 0, grid.iters_per_tile)
        ms, ns = grid.tile_extents(last)
        assert acc.shape == (ms.stop - ms.start, ns.stop - ns.start)

    def test_invalid_range_rejected(self, grid, ab):
        a, b = ab
        with pytest.raises(ConfigurationError):
            mac_loop(grid, a, b, 0, 2, 1)
        with pytest.raises(ConfigurationError):
            mac_loop(grid, a, b, 0, 0, grid.iters_per_tile + 1)


class TestFragmentVariant:
    def test_matches_sliced_variant_bitwise_fp64(self, grid, ab):
        a, b = ab
        for tile in (0, grid.num_tiles - 1):
            for lo, hi in [(0, grid.iters_per_tile), (2, 5), (6, 7)]:
                sliced = mac_loop(grid, a, b, tile, lo, hi)
                frag = mac_loop_fragments(grid, a, b, tile, lo, hi)
                assert np.allclose(sliced, frag, rtol=1e-13)

    def test_invalid_range_rejected(self, grid, ab):
        a, b = ab
        with pytest.raises(ConfigurationError):
            mac_loop_fragments(grid, a, b, 0, -1, 2)
