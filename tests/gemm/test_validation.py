"""Result-validation tests."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.gemm import (
    FP16_FP32,
    FP64,
    GemmProblem,
    max_relative_error,
    random_operands,
    reference_gemm,
    validate_result,
)


class TestMaxRelativeError:
    def test_zero_for_identical(self):
        x = np.arange(12.0).reshape(3, 4)
        assert max_relative_error(x, x) == 0.0

    def test_scales_by_magnitude(self):
        expected = np.full((2, 2), 100.0)
        result = expected + 1.0
        assert max_relative_error(result, expected) == pytest.approx(0.01)

    def test_floor_near_zero(self):
        expected = np.zeros((2, 2))
        result = np.full((2, 2), 0.5)
        assert max_relative_error(result, expected) == pytest.approx(0.5)

    def test_empty_arrays(self):
        assert max_relative_error(np.zeros((0, 3)), np.zeros((0, 3))) == 0.0


class TestValidateResult:
    def test_accepts_correct_fp64(self):
        p = GemmProblem(10, 11, 12, dtype=FP64)
        a, b = random_operands(p, 0)
        err = validate_result(p, a @ b, a, b)
        assert err < 1e-12

    def test_accepts_correct_fp16_with_tolerance(self):
        p = GemmProblem(32, 32, 200, dtype=FP16_FP32)
        a, b = random_operands(p, 0)
        out = (a.astype(np.float32) @ b.astype(np.float32)).astype(np.float32)
        validate_result(p, out, a, b)

    def test_rejects_wrong_result(self):
        p = GemmProblem(8, 8, 8, dtype=FP64)
        a, b = random_operands(p, 0)
        wrong = a @ b + 1.0
        with pytest.raises(ValidationError, match="max relative error"):
            validate_result(p, wrong, a, b)

    def test_rejects_wrong_shape(self):
        p = GemmProblem(8, 8, 8, dtype=FP64)
        a, b = random_operands(p, 0)
        with pytest.raises(ValidationError, match="shape"):
            validate_result(p, np.zeros((4, 4)), a, b)

    def test_beta_path(self):
        p = GemmProblem(6, 6, 6, dtype=FP64, beta=2.0)
        a, b = random_operands(p, 0)
        c = np.ones((6, 6))
        out = reference_gemm(p, a, b, c)
        validate_result(p, out, a, b, c)

    def test_custom_tolerance(self):
        p = GemmProblem(8, 8, 8, dtype=FP64)
        a, b = random_operands(p, 0)
        slightly_off = (a @ b) * (1 + 1e-6)
        validate_result(p, slightly_off, a, b, rtol=1e-3)
        with pytest.raises(ValidationError):
            validate_result(p, slightly_off, a, b, rtol=1e-9)
