"""Isolation for the global observability state.

The profiler and the counters registry are process-global by design
(that is what makes them mergeable across workers), so every test in
this package starts from a clean slate and leaves one behind.
"""

import pytest

from repro.obs import counters, profiler


@pytest.fixture(autouse=True)
def _clean_obs_state():
    was_enabled = profiler.profiling_enabled()
    profiler.disable_profiling()
    profiler.reset_profile()
    counters.reset_counters()
    yield
    if was_enabled:
        profiler.enable_profiling()
    else:
        profiler.disable_profiling()
    profiler.reset_profile()
    counters.reset_counters()
