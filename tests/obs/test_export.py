"""Chrome/Perfetto exporters: schema round-trip, track semantics, colors.

The Figure 2(b) schedule (384x384x128 Stream-K g=4 on the 4-SM GPU) is
the canonical export subject: it exercises every segment kind including
the partial-sum WAIT/FIXUP protocol, and it is the committed example
trace in ``docs/traces/``.
"""

import json

import pytest

from repro.gemm import FP16_FP32, Blocking, GemmProblem, TileGrid
from repro.gpu import HYPOTHETICAL_4SM
from repro.harness import run_schedule
from repro.obs.export import (
    SEGMENT_COLORS,
    profile_to_chrome,
    render_flamegraph,
    trace_to_chrome,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.profiler import Profile, SpanEvent
from repro.gpu.cta import SegmentKind
from repro.schedules.stream_k import stream_k_schedule


@pytest.fixture(scope="module")
def fig2_trace():
    problem = GemmProblem(384, 384, 128, dtype=FP16_FP32)
    grid = TileGrid(problem, Blocking(128, 128, 32))
    sched = stream_k_schedule(grid, 4)
    run = run_schedule(sched, HYPOTHETICAL_4SM, execute_numeric=False)
    return run.result.trace


class TestTraceExport:
    def test_round_trip_through_json(self, fig2_trace):
        doc = trace_to_chrome(fig2_trace, name="fig2")
        validate_chrome_trace(doc)
        reloaded = json.loads(json.dumps(doc))
        validate_chrome_trace(reloaded)
        assert reloaded["traceEvents"] == doc["traceEvents"]

    def test_one_track_per_sm_slot(self, fig2_trace):
        doc = trace_to_chrome(fig2_trace)
        names = [
            e for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        ]
        assert len(names) == fig2_trace.num_sm_slots
        assert {e["args"]["name"] for e in names} == {
            "SM slot %d" % s for s in range(fig2_trace.num_sm_slots)
        }
        slices = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert {e["tid"] for e in slices} <= set(range(fig2_trace.num_sm_slots))

    def test_every_segment_kind_colored_per_vocabulary(self, fig2_trace):
        doc = trace_to_chrome(fig2_trace)
        slices = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        kinds_seen = {e["cat"] for e in slices}
        # The fig2 schedule exercises the full protocol.
        assert kinds_seen == set(SEGMENT_COLORS)
        for e in slices:
            assert e["cname"] == SEGMENT_COLORS[e["cat"]]

    def test_color_vocabulary_covers_segment_kinds(self):
        assert set(SEGMENT_COLORS) == {k.value for k in SegmentKind}

    def test_waits_flagged_with_blocking_peer(self, fig2_trace):
        doc = trace_to_chrome(fig2_trace)
        waits = [
            e for e in doc["traceEvents"]
            if e["ph"] == "X" and e["cat"] == "wait"
        ]
        assert waits, "fig2 Stream-K schedule must contain WAIT segments"
        for e in waits:
            assert e["cname"] == "terrible"
            assert e["name"].startswith("WAIT cta")
            assert "peer_slot" in e["args"]

    def test_signal_instants_mark_flag_publication(self, fig2_trace):
        doc = trace_to_chrome(fig2_trace)
        signals = [
            e for e in doc["traceEvents"]
            if e["ph"] == "X" and e["cat"] == "signal"
        ]
        instants = [e for e in doc["traceEvents"] if e["ph"] == "i"]
        assert len(instants) == len(signals) > 0
        ends = {(e["tid"], e["ts"] + e["dur"]) for e in signals}
        for i in instants:
            assert (i["tid"], i["ts"]) in ends

    def test_clock_domain_is_cycles(self, fig2_trace):
        doc = trace_to_chrome(fig2_trace, clock_hz=1.005e9)
        other = doc["otherData"]
        assert "cycle" in other["clock_domain"]
        assert other["makespan_cycles"] == fig2_trace.makespan
        assert other["clock_hz"] == pytest.approx(1.005e9)
        last = max(
            e["ts"] + e["dur"] for e in doc["traceEvents"] if e["ph"] == "X"
        )
        assert last == pytest.approx(fig2_trace.makespan)

    def test_write_validates_and_is_loadable(self, fig2_trace, tmp_path):
        path = tmp_path / "t.json"
        assert write_chrome_trace(str(path), trace_to_chrome(fig2_trace)) == str(path)
        validate_chrome_trace(json.loads(path.read_text()))

    def test_matches_committed_example(self, fig2_trace):
        """docs/traces/fig2_stream_k_g4.json is exactly this export."""
        import os

        here = os.path.dirname(__file__)
        committed = os.path.join(
            here, "..", "..", "docs", "traces", "fig2_stream_k_g4.json"
        )
        with open(committed) as fh:
            doc = json.load(fh)
        validate_chrome_trace(doc)
        fresh = trace_to_chrome(fig2_trace)
        assert doc["traceEvents"] == fresh["traceEvents"]


class TestValidator:
    def test_rejects_non_object(self):
        with pytest.raises(ValueError):
            validate_chrome_trace([])

    def test_rejects_missing_events(self):
        with pytest.raises(ValueError):
            validate_chrome_trace({"traceEvents": "nope"})

    def test_rejects_unknown_phase(self):
        with pytest.raises(ValueError, match="phase"):
            validate_chrome_trace(
                {"traceEvents": [{"ph": "Z", "pid": 0, "tid": 0}]}
            )

    def test_rejects_non_integer_pid(self):
        with pytest.raises(ValueError, match="pid"):
            validate_chrome_trace(
                {"traceEvents": [{"ph": "M", "pid": "gpu", "tid": 0}]}
            )

    def test_rejects_negative_duration(self):
        ev = {"ph": "X", "name": "x", "pid": 0, "tid": 0, "ts": 0, "dur": -1}
        with pytest.raises(ValueError, match="dur"):
            validate_chrome_trace({"traceEvents": [ev]})

    def test_rejects_nan(self):
        ev = {"ph": "X", "name": "x", "pid": 0, "tid": 0, "ts": 0.0,
              "dur": 1.0, "args": {"v": float("nan")}}
        with pytest.raises(ValueError, match="serializable"):
            validate_chrome_trace({"traceEvents": [ev]})


class TestProfileExport:
    def _profile(self):
        p = Profile()
        # Two processes with incomparable perf_counter origins.
        p.record(SpanEvent("corpus", 100.0, 100.5, pid=1, tid=10, depth=0))
        p.record(SpanEvent("corpus/shard", 100.1, 100.3, pid=1, tid=10, depth=1))
        p.record(SpanEvent("shard", 5000.0, 5000.2, pid=2, tid=20, depth=0))
        return p

    def test_per_process_origin_normalization(self):
        doc = profile_to_chrome(self._profile())
        validate_chrome_trace(doc)
        slices = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        for pid in (1, 2):
            assert min(e["ts"] for e in slices if e["pid"] == pid) == 0.0
        by_name = {e["name"]: e for e in slices}
        assert by_name["corpus/shard"]["ts"] == pytest.approx(0.1e6)
        assert by_name["corpus/shard"]["dur"] == pytest.approx(0.2e6)

    def test_one_process_track_per_pid(self):
        doc = profile_to_chrome(self._profile())
        metas = [
            e for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        ]
        assert {e["pid"] for e in metas} == {1, 2}


class TestFlamegraph:
    def test_shape(self):
        p = Profile()
        p.record(SpanEvent("root", 0.0, 4.0, 1, 1, 0))
        p.record(SpanEvent("root/fast", 0.0, 1.0, 1, 1, 1))
        p.record(SpanEvent("root/slow", 1.0, 4.0, 1, 1, 1))
        out = render_flamegraph(p, width=20)
        lines = out.splitlines()
        assert len(lines) == 3
        assert "root" in lines[0]
        bar = lambda line: line.split("|")[1].count("#")
        assert bar(lines[0]) == 20                    # 100% of the root
        assert bar(lines[2]) > bar(lines[1])          # slow > fast

    def test_empty(self):
        assert "no spans" in render_flamegraph(Profile())
