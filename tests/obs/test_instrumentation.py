"""End-to-end instrumentation: the wired-in spans and counters fire.

These tests pin the acceptance criteria of the observability layer:
cache hit/miss counters are nonzero on warm-cache paths, executor
volumes are published, sharded workers ship their telemetry home, and
the profiler costs <5% on a 2000-shape corpus evaluation when enabled.
"""

import os
import time

import numpy as np
import pytest

from repro.corpus import CorpusSpec, generate_corpus
from repro.gemm import FP16_FP32, Blocking, GemmProblem, TileGrid
from repro.gpu import A100, HYPOTHETICAL_4SM
from repro.harness import run_schedule
from repro.harness.parallel import (
    clear_eval_memo,
    evaluate_corpus_cached,
    evaluate_corpus_sharded,
)
from repro.harness.vectorized import evaluate_corpus
from repro.model.paramcache import calibrate_cached
from repro.obs import counters, profiler
from repro.schedules.stream_k import stream_k_schedule


@pytest.fixture
def fig2_schedule():
    problem = GemmProblem(384, 384, 128, dtype=FP16_FP32)
    return stream_k_schedule(TileGrid(problem, Blocking(128, 128, 32)), 4)


class TestExecutorCounters:
    def test_volumes_published_per_run(self, fig2_schedule):
        run_schedule(fig2_schedule, HYPOTHETICAL_4SM, execute_numeric=False)
        assert counters.get_counter("executor.runs") == 1
        assert counters.get_counter("executor.ctas") == 4
        assert counters.get_counter("executor.segments") > 4
        assert counters.get_counter("executor.signals") == 3

    def test_spans_recorded_when_profiling(self, fig2_schedule):
        profiler.enable_profiling()
        run_schedule(fig2_schedule, HYPOTHETICAL_4SM, execute_numeric=False)
        paths = {e.path for e in profiler.get_profile().events}
        assert "executor_run" in paths


class TestCacheCounters:
    def test_paramcache_warm_lookup_hits_memo(self):
        dtype = FP16_FP32
        blocking = Blocking(*dtype.default_blocking)
        calibrate_cached(HYPOTHETICAL_4SM, blocking, dtype)  # warm
        counters.reset_counters()
        calibrate_cached(HYPOTHETICAL_4SM, blocking, dtype)
        assert counters.get_counter("paramcache.memo_hit") >= 1
        assert counters.hit_rate("paramcache") == 1.0

    def test_evalcache_miss_then_memo_hit(self, monkeypatch):
        monkeypatch.delenv("REPRO_EVAL_CACHE_DIR", raising=False)
        clear_eval_memo()
        shapes = generate_corpus(CorpusSpec(size=64))
        evaluate_corpus_cached(shapes, FP16_FP32, A100)
        assert counters.get_counter("evalcache.miss") == 1
        evaluate_corpus_cached(shapes, FP16_FP32, A100)
        assert counters.get_counter("evalcache.memo_hit") == 1
        assert counters.hit_rate("evalcache") == pytest.approx(0.5)
        clear_eval_memo()

    def test_evalcache_disk_hit_across_memo_clears(self, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_EVAL_CACHE_DIR", raising=False)
        clear_eval_memo()
        shapes = generate_corpus(CorpusSpec(size=64))
        evaluate_corpus_cached(shapes, FP16_FP32, A100, cache_dir=str(tmp_path))
        clear_eval_memo()  # simulate a fresh process
        evaluate_corpus_cached(shapes, FP16_FP32, A100, cache_dir=str(tmp_path))
        assert counters.get_counter("evalcache.disk_hit") == 1
        clear_eval_memo()

    def test_l2sim_counters_from_cache_replay(self, fig2_schedule):
        run_schedule(
            fig2_schedule, HYPOTHETICAL_4SM,
            execute_numeric=False, memory_model="cache_sim",
        )
        hits = counters.get_counter("l2sim.fragment.hit")
        misses = counters.get_counter("l2sim.fragment.miss")
        assert hits + misses > 0
        assert misses > 0  # compulsory misses always exist
        assert counters.hit_rate("l2sim.fragment") is not None


class TestShardedTelemetry:
    def test_worker_spans_and_counters_merge_into_parent(self):
        profiler.enable_profiling()
        shapes = generate_corpus(CorpusSpec(size=700))
        res = evaluate_corpus_sharded(shapes, FP16_FP32, A100, jobs=2)
        assert res.streamk.shape == (700,)
        events = profiler.get_profile().events
        shard_events = [e for e in events if e.path == "shard"]
        # 700 rows at >=256 rows/shard -> 3 shards, each profiled in a worker.
        assert len(shard_events) == 3
        assert all(e.pid != os.getpid() for e in shard_events)
        # Worker pids are preserved for the Perfetto export.
        assert len({e.pid for e in shard_events}) >= 1
        # The parent's own pool/merge spans are there too.
        paths = {e.path for e in events}
        assert "sharded_pool" in paths and "merge_shards" in paths
        # Nested engine spans shipped home from the workers.
        assert any(e.path == "shard/evaluate_corpus" for e in events)

    def test_sharded_result_matches_inprocess(self):
        shapes = generate_corpus(CorpusSpec(size=600))
        a = evaluate_corpus_sharded(shapes, FP16_FP32, A100, jobs=2)
        b = evaluate_corpus(shapes, FP16_FP32, A100)
        np.testing.assert_array_equal(a.streamk, b.streamk)
        np.testing.assert_array_equal(a.cublas, b.cublas)


class TestOverhead:
    def test_enabled_profiler_costs_under_5_percent(self):
        """Acceptance: <5% on a 2000-shape corpus evaluation.

        The corpus engine records ~10 coarse spans per evaluation, so the
        true cost is microseconds; min-of-N timing plus a tiny absolute
        epsilon keeps the assertion robust to scheduler noise.
        """
        shapes = generate_corpus(CorpusSpec(size=2000))
        evaluate_corpus(shapes, FP16_FP32, A100)  # warm calibration + caches

        def best_of(n=5):
            best = float("inf")
            for _ in range(n):
                t0 = time.perf_counter()
                evaluate_corpus(shapes, FP16_FP32, A100)
                best = min(best, time.perf_counter() - t0)
            return best

        profiler.disable_profiling()
        disabled = best_of()
        profiler.enable_profiling()
        profiler.reset_profile()
        enabled = best_of()
        profiler.disable_profiling()
        assert len(profiler.get_profile()) > 0  # spans actually recorded
        assert enabled <= disabled * 1.05 + 2e-3, (
            "profiler overhead %.1f%% (disabled %.4fs, enabled %.4fs)"
            % (100 * (enabled / disabled - 1), disabled, enabled)
        )

    def test_disabled_span_overhead_is_flag_check(self):
        """Disabled spans allocate nothing: same object every call."""
        profiler.disable_profiling()
        from repro.obs.profiler import span

        objs = {id(span("a")) for _ in range(100)}
        assert len(objs) == 1
        assert len(profiler.get_profile()) == 0
