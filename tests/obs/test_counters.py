"""Counters registry: increments, merge, hit rates, report."""

import pytest

from repro.obs.counters import (
    counters_report,
    get_counter,
    hit_rate,
    inc_counter,
    merge_counters,
    reset_counters,
    snapshot_counters,
)


class TestBasics:
    def test_inc_and_get(self):
        assert get_counter("x") == 0
        assert inc_counter("x") == 1
        assert inc_counter("x", 4) == 5
        assert get_counter("x") == 5

    def test_snapshot_and_merge_are_additive(self):
        inc_counter("a", 2)
        snap = snapshot_counters()
        reset_counters()
        inc_counter("a", 1)
        inc_counter("b", 7)
        merge_counters(snap)
        assert get_counter("a") == 3
        assert get_counter("b") == 7

    def test_reset(self):
        inc_counter("x")
        reset_counters()
        assert get_counter("x") == 0
        assert snapshot_counters() == {}


class TestHitRate:
    def test_none_when_empty(self):
        assert hit_rate("paramcache") is None

    def test_memo_and_disk_hits_both_count(self):
        inc_counter("paramcache.memo_hit", 2)
        inc_counter("paramcache.disk_hit", 1)
        inc_counter("paramcache.miss", 1)
        assert hit_rate("paramcache") == pytest.approx(0.75)

    def test_byte_volume_counters_excluded(self):
        inc_counter("l2sim.fragment.hit", 1)
        inc_counter("l2sim.fragment.miss", 1)
        inc_counter("l2sim.fragment.hit_bytes", 10**9)
        inc_counter("l2sim.fragment.miss_bytes", 10**9)
        assert hit_rate("l2sim.fragment") == pytest.approx(0.5)

    def test_prefix_is_exact_component(self):
        inc_counter("evalcache.memo_hit")
        assert hit_rate("eval") is None  # "eval" != "evalcache"


class TestReport:
    def test_empty(self):
        assert "no counters" in counters_report()

    def test_values_and_derived_rates(self):
        inc_counter("executor.runs", 3)
        inc_counter("evalcache.memo_hit", 1)
        inc_counter("evalcache.miss", 1)
        rep = counters_report()
        assert "executor.runs" in rep and "3" in rep
        assert "evalcache hit rate" in rep
        assert "50.0%" in rep
