"""Span profiler: hierarchy, zero-overhead disabled path, merge, report."""

import os
import pickle
import threading

import pytest

from repro.obs.profiler import (
    Profile,
    SpanEvent,
    disable_profiling,
    enable_profiling,
    get_profile,
    merge_profile,
    profiled,
    profiler_report,
    profiling_enabled,
    reset_profile,
    snapshot_profile,
    span,
    sync_profiling_with_env,
)


class TestDisabledPath:
    def test_disabled_span_is_shared_noop_singleton(self):
        disable_profiling()
        s1 = span("a")
        s2 = span("b")
        assert s1 is s2  # no allocation per call
        with s1:
            pass
        assert len(get_profile()) == 0

    def test_profiled_decorator_disabled_records_nothing(self):
        @profiled("work")
        def fn(x):
            return x + 1

        assert fn(1) == 2
        assert len(get_profile()) == 0


class TestHierarchy:
    def test_nested_spans_build_slash_paths(self):
        enable_profiling()
        with span("outer"):
            with span("inner"):
                pass
            with span("inner"):
                pass
        events = get_profile().events
        paths = sorted(e.path for e in events)
        assert paths == ["outer", "outer/inner", "outer/inner"]
        by_path = {e.path: e for e in events}
        assert by_path["outer"].depth == 0
        assert by_path["outer/inner"].depth == 1
        assert all(e.pid == os.getpid() for e in events)

    def test_span_times_are_ordered_and_nested(self):
        enable_profiling()
        with span("outer"):
            with span("inner"):
                pass
        by_path = {e.path: e for e in get_profile().events}
        outer, inner = by_path["outer"], by_path["outer/inner"]
        assert outer.start <= inner.start <= inner.end <= outer.end
        assert inner.duration >= 0.0

    def test_profiled_decorator_uses_label(self):
        enable_profiling()

        @profiled("labelled")
        def fn():
            with span("child"):
                return 3

        assert fn() == 3
        paths = {e.path for e in get_profile().events}
        assert paths == {"labelled", "labelled/child"}

    def test_exceptions_still_record_and_pop(self):
        enable_profiling()
        with pytest.raises(ValueError):
            with span("boom"):
                raise ValueError("x")
        with span("after"):
            pass
        paths = sorted(e.path for e in get_profile().events)
        assert paths == ["after", "boom"]  # "after" is NOT nested under "boom"


class TestMerge:
    def test_snapshot_is_picklable_and_merges(self):
        enable_profiling()
        with span("work"):
            pass
        snap = pickle.loads(pickle.dumps(snapshot_profile()))
        reset_profile()
        assert len(get_profile()) == 0
        merge_profile(snap)
        assert [e.path for e in get_profile().events] == ["work"]

    def test_merge_profile_object(self):
        other = Profile()
        other.record(SpanEvent("w", 0.0, 1.0, pid=123, tid=1, depth=0))
        merge_profile(other)
        e = get_profile().events[0]
        assert (e.path, e.pid) == ("w", 123)

    def test_thread_events_keep_tids(self):
        enable_profiling()
        # Both threads must be alive at the same time: thread idents are
        # reused once a thread exits, so sequential runs can share one.
        barrier = threading.Barrier(2)

        def work():
            barrier.wait()
            with span("t"):
                pass

        threads = [threading.Thread(target=work) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        tids = {e.tid for e in get_profile().events}
        assert len(tids) == 2


class TestAggregateAndReport:
    def test_aggregate_totals_and_self_time(self):
        p = Profile()
        p.record(SpanEvent("a", 0.0, 10.0, 1, 1, 0))
        p.record(SpanEvent("a/b", 1.0, 4.0, 1, 1, 1))
        p.record(SpanEvent("a/b/c", 2.0, 3.0, 1, 1, 2))
        agg = p.aggregate()
        assert agg["a"]["total_s"] == pytest.approx(10.0)
        assert agg["a"]["self_s"] == pytest.approx(7.0)  # minus direct child b
        assert agg["a/b"]["self_s"] == pytest.approx(2.0)
        assert agg["a/b/c"]["self_s"] == pytest.approx(1.0)

    def test_self_time_never_negative_with_overlapping_children(self):
        p = Profile()
        p.record(SpanEvent("a", 0.0, 1.0, 1, 1, 0))
        # Two workers' children overlap their parent in wall-clock terms.
        p.record(SpanEvent("a/b", 0.0, 1.0, 1, 2, 1))
        p.record(SpanEvent("a/b", 0.0, 1.0, 1, 3, 1))
        assert p.aggregate()["a"]["self_s"] == 0.0

    def test_report_lists_spans(self):
        enable_profiling()
        with span("corpus"):
            with span("streamk"):
                pass
        rep = profiler_report()
        assert "corpus" in rep and "streamk" in rep
        assert "count" in rep

    def test_empty_report(self):
        assert "no spans" in profiler_report()


class TestEnvActivation:
    def test_sync_with_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE", "1")
        assert sync_profiling_with_env() is True
        assert profiling_enabled()
        monkeypatch.setenv("REPRO_PROFILE", "0")
        assert sync_profiling_with_env() is False
        monkeypatch.delenv("REPRO_PROFILE")
        assert sync_profiling_with_env() is False
