"""Text rendering tests."""

import numpy as np

from repro.metrics import (
    format_relative_table,
    format_roofline_rows,
    format_table,
    format_utilization,
    relative_performance,
)


class TestFormatTable:
    def test_alignment_and_title(self):
        out = format_table(["a", "bbb"], [["1", "2"], ["333", "4"]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bbb" in lines[1]
        assert len(lines) == 5


class TestRelativeTable:
    def test_paper_shaped_rows(self):
        rp = relative_performance(np.array([2.0, 3.0]), np.array([1.0, 1.0]))
        out = format_relative_table({"vs cuBLAS": rp}, title="Table 2")
        assert "Average" in out and "StdDev" in out
        assert "Min" in out and "Max" in out
        assert "2.50x" in out  # average
        assert "3.00x" in out  # max


class TestRooflineRows:
    def test_renders_bins(self):
        rows = [
            {"intensity_lo": 1.0, "intensity_hi": 10.0, "count": 5, "p5": 10.0, "p95": 90.0},
        ]
        out = format_roofline_rows(rows, "fig")
        assert "1-10" in out and "90.0%" in out

    def test_empty(self):
        assert "(empty)" in format_roofline_rows([], "fig")

    def test_uses_shared_utilization_formatting(self):
        rows = [
            {"intensity_lo": 0.0, "intensity_hi": 1.0, "count": 1, "p5": 12.34},
        ]
        assert format_utilization(0.1234) in format_roofline_rows(rows, "fig")


class TestFormatUtilization:
    """The one percent-rendering helper every surface shares."""

    def test_fraction_to_percent(self):
        assert format_utilization(0.75) == "75.0%"
        assert format_utilization(1.0) == "100.0%"
        assert format_utilization(0.0) == "0.0%"

    def test_decimals(self):
        assert format_utilization(0.75, decimals=0) == "75%"
        assert format_utilization(0.12345, decimals=2) == "12.35%"

    def test_cli_simulate_uses_it(self):
        """The simulate table's 75.0% ceiling comes from this helper."""
        from repro.cli import main
        import io
        import contextlib

        buf = io.StringIO()
        with contextlib.redirect_stdout(buf):
            assert main(
                ["simulate", "384", "384", "128", "--gpu", "hypothetical_4sm"]
            ) == 0
        assert format_utilization(0.75) in buf.getvalue()
