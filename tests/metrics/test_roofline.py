"""Roofline summary tests."""

import numpy as np
import pytest

from repro.corpus import CorpusSpec, generate_corpus
from repro.errors import ConfigurationError
from repro.gemm import FP16_FP32
from repro.gpu import A100
from repro.metrics import band_width, machine_ceiling, roofline_points, roofline_summary


class TestMachineCeiling:
    def test_bandwidth_regime_linear(self):
        pct = machine_ceiling(np.array([1.0, 2.0]), A100, FP16_FP32)
        assert pct[1] == pytest.approx(2 * pct[0])

    def test_compute_regime_capped_at_100(self):
        pct = machine_ceiling(np.array([1e6]), A100, FP16_FP32)
        assert pct[0] == 100.0

    def test_crossover_at_machine_balance(self):
        balance = A100.peak_tflops(FP16_FP32) * 1e12 / A100.dram_bandwidth
        below = machine_ceiling(np.array([balance * 0.9]), A100, FP16_FP32)
        assert below[0] == pytest.approx(90.0)


class TestRooflinePoints:
    def test_points_shapes_and_ranges(self):
        shapes = generate_corpus(CorpusSpec(size=50))
        times = np.full(50, 1e-4)
        intensity, pct = roofline_points(shapes, times, A100, FP16_FP32)
        assert intensity.shape == pct.shape == (50,)
        assert (pct > 0).all()

    def test_faster_times_higher_utilization(self):
        shapes = generate_corpus(CorpusSpec(size=10))
        _, slow = roofline_points(shapes, np.full(10, 1e-3), A100, FP16_FP32)
        _, fast = roofline_points(shapes, np.full(10, 1e-4), A100, FP16_FP32)
        assert np.allclose(fast, 10 * slow)

    def test_length_mismatch_rejected(self):
        shapes = generate_corpus(CorpusSpec(size=10))
        with pytest.raises(ConfigurationError):
            roofline_points(shapes, np.ones(9), A100, FP16_FP32)


class TestSummaryAndBandWidth:
    def _landscape(self, spread):
        rng = np.random.default_rng(0)
        intensity = np.geomspace(1, 1000, 500)
        pct = 50 + spread * rng.standard_normal(500)
        return intensity, np.clip(pct, 1, 100)

    def test_summary_rows_structure(self):
        intensity, pct = self._landscape(5)
        rows = roofline_summary(intensity, pct, num_bins=8)
        assert rows
        for r in rows:
            assert r["p5"] <= r["p50"] <= r["p95"]
            assert r["count"] > 0

    def test_wider_landscape_has_wider_band(self):
        i1, p1 = self._landscape(2)
        i2, p2 = self._landscape(15)
        assert band_width(i2, p2) > band_width(i1, p1)

    def test_degenerate_band_is_zero(self):
        intensity = np.geomspace(1, 100, 50)
        pct = np.full(50, 42.0)
        assert band_width(intensity, pct) == pytest.approx(0.0)
