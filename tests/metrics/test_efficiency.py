"""Quantization-efficiency metric tests — the Figure 1/2 arithmetic."""

import pytest

from repro.errors import ConfigurationError
from repro.gemm import FP16_FP32, Blocking, GemmProblem, TileGrid
from repro.metrics import iteration_makespan, quantization_efficiency, wave_count
from repro.schedules import (
    data_parallel_schedule,
    fixed_split_schedule,
    stream_k_schedule,
    two_tile_schedule,
)


@pytest.fixture
def fig1_grid():
    return TileGrid(GemmProblem(384, 384, 128, dtype=FP16_FP32), Blocking(128, 128, 32))


class TestPaperNumbers:
    def test_fig1a_75_percent(self, fig1_grid):
        sched = data_parallel_schedule(fig1_grid)
        assert quantization_efficiency(sched, 4) == pytest.approx(0.75)

    def test_fig1b_90_percent(self):
        grid = TileGrid(GemmProblem(384, 384, 128, dtype=FP16_FP32), Blocking(128, 64, 32))
        sched = data_parallel_schedule(grid)
        assert quantization_efficiency(sched, 4) == pytest.approx(0.90)

    def test_fig2a_fixed_split_90_percent(self, fig1_grid):
        sched = fixed_split_schedule(fig1_grid, 2)
        assert quantization_efficiency(sched, 4) == pytest.approx(0.90)

    def test_fig2b_stream_k_100_percent(self, fig1_grid):
        sched = stream_k_schedule(fig1_grid, 4)
        assert quantization_efficiency(sched, 4) == pytest.approx(1.0)

    def test_hybrid_near_perfect_on_fig3_shape(self):
        grid = TileGrid(GemmProblem(896, 384, 128, dtype=FP16_FP32), Blocking(128, 128, 32))
        sched = two_tile_schedule(grid, 4)
        assert quantization_efficiency(sched, 4) > 0.99


class TestMechanics:
    def test_wave_count(self):
        assert wave_count(9, 4) == 3
        assert wave_count(8, 4) == 2
        assert wave_count(0, 4) == 0
        with pytest.raises(ConfigurationError):
            wave_count(4, 0)

    def test_iteration_makespan_list_schedules(self, fig1_grid):
        sched = data_parallel_schedule(fig1_grid)
        # 9 tiles x 4 iters, 4 slots -> 3 waves of 4 iterations
        assert iteration_makespan(sched, 4) == 12

    def test_empty_schedule_perfect(self, fig1_grid):
        sched = stream_k_schedule(fig1_grid, 1)
        assert quantization_efficiency(sched, 1) == pytest.approx(1.0)
