"""Relative-performance statistics tests."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.metrics import relative_performance, slowdown_fraction


class TestRelativePerformance:
    def test_known_distribution(self):
        baseline = np.array([2.0, 1.0, 4.0])
        ours = np.array([1.0, 1.0, 1.0])
        rp = relative_performance(baseline, ours)
        assert rp.average == pytest.approx(7 / 3)
        assert rp.minimum == 1.0
        assert rp.maximum == 4.0
        assert rp.count == 3
        assert rp.stddev == pytest.approx(np.std([2.0, 1.0, 4.0]))

    def test_row_order_matches_paper_tables(self):
        rp = relative_performance(np.array([2.0]), np.array([1.0]))
        assert rp.row() == (2.0, 0.0, 2.0, 2.0)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            relative_performance(np.ones(3), np.ones(4))

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            relative_performance(np.array([]), np.array([]))

    def test_nonpositive_times_rejected(self):
        with pytest.raises(ConfigurationError):
            relative_performance(np.array([1.0, 0.0]), np.ones(2))


class TestSlowdownFraction:
    def test_counts_slowdowns(self):
        baseline = np.array([1.0, 1.0, 1.0, 1.0])
        ours = np.array([0.5, 1.0, 2.0, 1.5])
        assert slowdown_fraction(baseline, ours) == pytest.approx(0.5)

    def test_tolerance_forgives_noise(self):
        baseline = np.ones(4)
        ours = np.array([1.005, 1.005, 1.005, 2.0])
        assert slowdown_fraction(baseline, ours, tol=0.01) == pytest.approx(0.25)
