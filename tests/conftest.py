"""Shared fixtures: small problems, grids, GPUs, and cost models."""

import numpy as np
import pytest

from repro.gemm import FP16_FP32, FP64, Blocking, GemmProblem, TileGrid, random_operands
from repro.gpu import A100, HYPOTHETICAL_4SM, KernelCostModel


@pytest.fixture
def small_problem():
    """A ragged FP64 problem exercising edge tiles on every axis."""
    return GemmProblem(100, 70, 53, dtype=FP64)


@pytest.fixture
def small_grid(small_problem):
    return TileGrid(small_problem, Blocking(16, 16, 8))


@pytest.fixture
def small_operands(small_problem):
    return random_operands(small_problem, seed=1)


@pytest.fixture
def fp16_problem():
    return GemmProblem(96, 80, 64, dtype=FP16_FP32)


@pytest.fixture
def fp16_grid(fp16_problem):
    return TileGrid(fp16_problem, Blocking(32, 32, 16))


@pytest.fixture
def gpu4():
    return HYPOTHETICAL_4SM


@pytest.fixture
def a100():
    return A100


@pytest.fixture
def cost4(small_grid, gpu4):
    return KernelCostModel(
        gpu=gpu4, blocking=small_grid.blocking, dtype=small_grid.problem.dtype
    )


def assert_schedule_correct(schedule, a, b, reference, atol_scale=1.0):
    """Validate structure and numerics of a schedule in one call."""
    schedule.validate()
    out = schedule.execute(a, b)
    err = np.abs(out.astype(np.float64) - reference).max()
    scale = max(1.0, np.abs(reference).max())
    assert err / scale < 1e-10 * atol_scale, (
        "schedule %s wrong by %.3e" % (schedule.name, err)
    )
    return out
