"""Package-level surface tests: exports, error hierarchy, versioning."""

import pytest

import repro
from repro.errors import (
    CalibrationError,
    ConfigurationError,
    DeadlockError,
    ReproError,
    SimulationError,
    ValidationError,
)


class TestPublicSurface:
    def test_version(self):
        assert repro.__version__

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_subpackage_all_exports_resolve(self):
        import repro.corpus
        import repro.ensembles
        import repro.gemm
        import repro.gpu
        import repro.harness
        import repro.metrics
        import repro.model
        import repro.schedules

        for mod in (
            repro.corpus,
            repro.ensembles,
            repro.gemm,
            repro.gpu,
            repro.harness,
            repro.metrics,
            repro.model,
            repro.schedules,
        ):
            for name in mod.__all__:
                assert getattr(mod, name) is not None, (mod.__name__, name)


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [ConfigurationError, SimulationError, CalibrationError, ValidationError],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_configuration_error_is_value_error(self):
        """Callers catching ValueError at API boundaries still work."""
        assert issubclass(ConfigurationError, ValueError)

    def test_deadlock_is_simulation_error_with_blocked_list(self):
        err = DeadlockError([3, 7])
        assert isinstance(err, SimulationError)
        assert err.blocked == [3, 7]
        assert "3" in str(err)

    def test_one_catch_at_the_boundary(self):
        """The documented pattern: one except ReproError catches all."""
        from repro.gemm import GemmProblem

        with pytest.raises(ReproError):
            GemmProblem(-1, 2, 3)
