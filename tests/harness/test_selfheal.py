"""Self-healing sharded evaluation + evaluation-cache quarantine.

The acceptance bar: killing or failing a pool worker mid-sweep must
yield the bitwise-exact corpus result through retry or serial fallback,
with every recovery step visible in the ``harness.*`` obs counters.
"""

import os

import numpy as np
import pytest

from repro.corpus.generator import CorpusSpec, generate_corpus
from repro.gemm import FP64
from repro.gpu import A100
from repro.harness import parallel
from repro.harness.parallel import (
    _resolve_jobs,
    clear_eval_memo,
    corpus_fingerprint,
    evaluate_corpus_cached,
    evaluate_corpus_sharded,
)
from repro.harness.vectorized import evaluate_corpus
from repro.obs.counters import get_counter, reset_counters

from .test_parallel import assert_timings_equal


@pytest.fixture(scope="module")
def shapes():
    return generate_corpus(CorpusSpec(size=700))


@pytest.fixture(scope="module")
def reference(shapes):
    return evaluate_corpus(shapes, FP64, A100)


@pytest.fixture(autouse=True)
def _fresh_state(monkeypatch):
    clear_eval_memo()
    reset_counters()
    monkeypatch.setattr(parallel, "_SHARD_FAULT_HOOK", None)
    yield
    clear_eval_memo()
    reset_counters()


def _raise_on_first_attempt(shard_index, attempt):
    if attempt == 0:
        raise RuntimeError("injected shard failure (shard %d)" % shard_index)


def _crash_shard0_attempt0(shard_index, attempt):
    if shard_index == 0 and attempt == 0:
        os._exit(1)  # hard worker death: the result never arrives


def _always_raise(shard_index, attempt):
    raise RuntimeError("permanently failing shard %d" % shard_index)


class TestRetry:
    def test_failing_workers_retry_to_exact_result(
        self, shapes, reference, monkeypatch
    ):
        monkeypatch.setattr(
            parallel, "_SHARD_FAULT_HOOK", _raise_on_first_attempt
        )
        got = evaluate_corpus_sharded(
            shapes, FP64, A100, jobs=2, shard_rows=350, retry_backoff_s=0.0
        )
        assert_timings_equal(got, reference)
        assert get_counter("harness.shard_failures") == 2  # both shards
        assert get_counter("harness.shard_retries") == 2
        assert get_counter("harness.shards_ok") == 2
        assert get_counter("harness.shard_serial_fallbacks") == 0

    def test_crashed_worker_times_out_and_retries(
        self, shapes, reference, monkeypatch
    ):
        monkeypatch.setattr(
            parallel, "_SHARD_FAULT_HOOK", _crash_shard0_attempt0
        )
        got = evaluate_corpus_sharded(
            shapes,
            FP64,
            A100,
            jobs=2,
            shard_rows=350,
            shard_timeout=5.0,
            retry_backoff_s=0.0,
        )
        assert_timings_equal(got, reference)
        assert get_counter("harness.shard_timeouts") >= 1
        assert get_counter("harness.shard_retries") >= 1

    def test_exhausted_retries_fall_back_to_serial(
        self, shapes, reference, monkeypatch
    ):
        monkeypatch.setattr(parallel, "_SHARD_FAULT_HOOK", _always_raise)
        got = evaluate_corpus_sharded(
            shapes,
            FP64,
            A100,
            jobs=2,
            shard_rows=350,
            max_retries=1,
            retry_backoff_s=0.0,
        )
        assert_timings_equal(got, reference)
        assert get_counter("harness.shard_serial_fallbacks") == 2
        assert get_counter("harness.shard_retries") == 2  # one per shard
        assert get_counter("harness.shards_ok") == 0

    def test_unusable_pool_degrades_to_all_serial(
        self, shapes, reference, monkeypatch
    ):
        class BrokenCtx:
            def Pool(self, processes):
                raise OSError("fork denied")

        monkeypatch.setattr(
            parallel.multiprocessing, "get_context", lambda: BrokenCtx()
        )
        got = evaluate_corpus_sharded(shapes, FP64, A100, jobs=2, shard_rows=350)
        assert_timings_equal(got, reference)
        assert get_counter("harness.pool_unusable") == 1
        assert get_counter("harness.shard_serial_fallbacks") == 2


class TestResolveJobs:
    def test_respects_affinity_mask(self, monkeypatch):
        monkeypatch.setattr(os, "sched_getaffinity", lambda pid: {0, 2, 5})
        assert _resolve_jobs(0) == 3
        assert _resolve_jobs(-1) == 3

    def test_falls_back_without_affinity(self, monkeypatch):
        def boom(pid):
            raise OSError("no affinity syscall")

        monkeypatch.setattr(os, "sched_getaffinity", boom)
        assert _resolve_jobs(0) == max(1, os.cpu_count() or 1)

    def test_explicit_values_pass_through(self):
        assert _resolve_jobs(None) == 1
        assert _resolve_jobs(1) == 1
        assert _resolve_jobs(7) == 7

    def test_empty_affinity_mask_clamps_to_one(self, monkeypatch):
        """Constrained cgroups can expose an empty mask; never build a
        zero-worker pool (regression: used to return 0)."""
        monkeypatch.setattr(os, "sched_getaffinity", lambda pid: set())
        assert _resolve_jobs(0) == 1
        assert _resolve_jobs(-4) == 1

    def test_one_element_affinity_mask(self, monkeypatch):
        monkeypatch.setattr(os, "sched_getaffinity", lambda pid: {3})
        assert _resolve_jobs(0) == 1

    def test_affinity_valueerror_falls_back(self, monkeypatch):
        def refuse(pid):
            raise ValueError("affinity mask unavailable")

        monkeypatch.setattr(os, "sched_getaffinity", refuse)
        assert _resolve_jobs(0) == max(1, os.cpu_count() or 1)


class TestEvalCacheQuarantine:
    def _entry_path(self, tmp_path, shapes):
        key = corpus_fingerprint(shapes, FP64, A100)
        return parallel._eval_entry_path(str(tmp_path), key)

    def test_corrupt_artifact_quarantined_and_recomputed(
        self, shapes, tmp_path
    ):
        small = shapes[:64]
        evaluate_corpus_cached(small, FP64, A100, cache_dir=str(tmp_path))
        path = self._entry_path(tmp_path, small)
        assert os.path.exists(path)
        with open(path, "wb") as fh:
            fh.write(b"\x00not a zip archive")
        clear_eval_memo()
        res = evaluate_corpus_cached(small, FP64, A100, cache_dir=str(tmp_path))
        assert_timings_equal(res, evaluate_corpus(small, FP64, A100))
        assert os.path.exists(path + ".corrupt")
        assert get_counter("evalcache.corrupt_quarantined") == 1
        # Recomputation re-stored a clean artifact under the original name.
        assert os.path.exists(path)

    def test_truncated_zip_quarantined(self, shapes, tmp_path):
        small = shapes[:64]
        evaluate_corpus_cached(small, FP64, A100, cache_dir=str(tmp_path))
        path = self._entry_path(tmp_path, small)
        data = open(path, "rb").read()
        with open(path, "wb") as fh:
            fh.write(data[: len(data) // 2])  # valid zip magic, torn tail
        clear_eval_memo()
        evaluate_corpus_cached(small, FP64, A100, cache_dir=str(tmp_path))
        assert os.path.exists(path + ".corrupt")
        assert get_counter("evalcache.corrupt_quarantined") == 1

    def test_enospc_store_degrades_without_partial_files(
        self, shapes, tmp_path, monkeypatch
    ):
        """A full disk during the atomic publish leaves no temp file, a
        ``evalcache.write_failed`` count, and an unharmed result."""
        import errno

        small = shapes[:64]

        def no_space(src, dst):
            raise OSError(errno.ENOSPC, "No space left on device")

        monkeypatch.setattr(parallel.os, "replace", no_space)
        res = evaluate_corpus_cached(small, FP64, A100, cache_dir=str(tmp_path))
        assert_timings_equal(res, evaluate_corpus(small, FP64, A100))
        assert get_counter("evalcache.write_failed") == 1
        eval_dir = os.path.join(str(tmp_path), "eval")
        leftovers = [
            p for p in os.listdir(eval_dir) if p.endswith(".tmp")
        ] if os.path.isdir(eval_dir) else []
        assert leftovers == []
        assert not os.path.exists(self._entry_path(tmp_path, small))

    def test_enospc_paramcache_store_counts_and_continues(
        self, monkeypatch, tmp_path
    ):
        import errno

        from repro.gemm.tiling import Blocking
        from repro.model import paramcache
        from repro.model.paramcache import calibrate_cached, clear_memory_cache

        clear_memory_cache()
        monkeypatch.delenv("REPRO_NO_DISK_CACHE", raising=False)

        def no_space(src, dst):
            raise OSError(errno.ENOSPC, "No space left on device")

        monkeypatch.setattr(paramcache.os, "replace", no_space)
        params = calibrate_cached(
            A100, Blocking(*FP64.default_blocking), FP64,
            cache_dir=str(tmp_path),
        )
        assert params is not None  # calibration itself unharmed
        assert get_counter("paramcache.write_failed") == 1
        calib_dir = os.path.join(str(tmp_path), "calibration")
        leftovers = [
            p for p in os.listdir(calib_dir) if p.endswith(".tmp")
        ] if os.path.isdir(calib_dir) else []
        assert leftovers == []
        clear_memory_cache()

    def test_key_mismatch_is_a_miss_not_corruption(self, shapes, tmp_path):
        a, b = shapes[:64], shapes[:65]
        evaluate_corpus_cached(a, FP64, A100, cache_dir=str(tmp_path))
        path_a = self._entry_path(tmp_path, a)
        path_b = self._entry_path(tmp_path, b)
        # Impersonate corpus B with A's (valid, wrong-key) artifact.
        os.replace(path_a, path_b)
        clear_eval_memo()
        res = evaluate_corpus_cached(b, FP64, A100, cache_dir=str(tmp_path))
        assert_timings_equal(res, evaluate_corpus(b, FP64, A100))
        assert not os.path.exists(path_b + ".corrupt")
        assert get_counter("evalcache.corrupt_quarantined") == 0
