"""Tier-1 smoke for the corpus-evaluation benchmark path.

Runs the exact code path of ``benchmarks/bench_corpus_eval.py`` on a
2,000-shape subsample, so the engine benchmark can never silently rot
between full benchmark runs (imports, regime coverage, and the timing
harness itself all stay exercised in the default test suite).
"""

import os
import sys

import numpy as np

from repro.corpus.generator import CorpusSpec, generate_corpus

# benchmarks/ is a sibling package of tests/, not installed; reach it
# relative to this file so the suite works from any cwd.
_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
if _REPO_ROOT not in sys.path:
    sys.path.insert(0, _REPO_ROOT)

from benchmarks.bench_corpus_eval import run_corpus_eval  # noqa: E402

SMOKE_SHAPES = 2_000


def test_corpus_eval_smoke():
    shapes = generate_corpus(CorpusSpec(size=SMOKE_SHAPES))
    timings = run_corpus_eval(shapes)
    assert set(timings) == {"fp64_cold_s", "fp64_warm_s", "fp16_fp32_s"}
    assert all(v > 0 for v in timings.values())
    # Warm throughput floor: the vectorized engine should clear this by a
    # wide margin even on loaded CI machines (full corpus runs ~50k/s).
    assert SMOKE_SHAPES / timings["fp64_warm_s"] > 2_000


def test_smoke_corpus_covers_all_regimes():
    """The 2,000-shape slice must exercise every planning regime, or the
    smoke run would not actually cover the vectorized fast paths."""
    from repro.gemm import FP64, Blocking
    from repro.gpu import A100

    shapes = generate_corpus(CorpusSpec(size=SMOKE_SHAPES))
    blk = Blocking(*FP64.default_blocking)
    tiles_m = -(-shapes[:, 0] // blk.blk_m)
    tiles_n = -(-shapes[:, 1] // blk.blk_n)
    t = tiles_m * tiles_n
    p = A100.num_sms
    assert np.any(t % p == 0)  # Regime A: data-parallel waves
    assert np.any((t % p != 0) & (t < p))  # Regime B: basic Stream-K
    assert np.any((t % p != 0) & (t >= p))  # Regime C: two-tile hybrid
