"""Lease fabric: claims, heartbeats, expiry/reclaim, and bitwise merges.

In-process tests of :mod:`repro.harness.fabric` — the lease manager
units, the worker loop via :func:`join_sweep`, wedged-worker reclaim,
chaos kill seams, multi-process :func:`fabric_sweep`, and the routing
through :func:`evaluate_corpus_sharded`.  The real-SIGKILL multi-worker
matrix (byte-identical merged ``.npz``) runs through the CLI in the CI
``fabric`` job and in :class:`TestRealWorkerKill` below.
"""

import json
import os
import signal
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.corpus.generator import CorpusSpec, generate_corpus
from repro.errors import ConfigurationError
from repro.faults import ChaosWorkerKill
from repro.gemm import FP64
from repro.gpu import HYPOTHETICAL_4SM
from repro.harness import fabric as fabric_mod
from repro.harness.fabric import (
    DEFAULT_HEARTBEAT_FRACTION,
    DEFAULT_LEASE_SECONDS,
    LeaseManager,
    fabric_sweep,
    join_sweep,
    make_worker_id,
    resolve_heartbeat_seconds,
    resolve_lease_seconds,
)
from repro.harness.parallel import clear_eval_memo, evaluate_corpus_sharded
from repro.harness.vectorized import evaluate_corpus
from repro.obs.counters import get_counter, reset_counters

from .test_parallel import assert_timings_equal

SIZE = 600
SHARD_ROWS = 128  # -> 5 shards
NSHARDS = 5


@pytest.fixture(scope="module")
def shapes():
    return generate_corpus(CorpusSpec(size=SIZE))


@pytest.fixture(scope="module")
def reference(shapes):
    return evaluate_corpus(shapes, FP64, HYPOTHETICAL_4SM)


@pytest.fixture(autouse=True)
def _fresh_state(monkeypatch):
    monkeypatch.delenv("REPRO_LEASE_SECONDS", raising=False)
    monkeypatch.delenv("REPRO_HEARTBEAT_SECONDS", raising=False)
    clear_eval_memo()
    reset_counters()
    yield
    clear_eval_memo()
    reset_counters()


def _join(shapes, jdir, **kw):
    kw.setdefault("shard_rows", SHARD_ROWS)
    return join_sweep(shapes, FP64, HYPOTHETICAL_4SM, jdir, **kw)


class TestResolvers:
    def test_lease_explicit_beats_env_beats_default(self, monkeypatch):
        assert resolve_lease_seconds(12.5) == 12.5
        monkeypatch.setenv("REPRO_LEASE_SECONDS", "7.5")
        assert resolve_lease_seconds(None) == 7.5
        assert resolve_lease_seconds(12.5) == 12.5  # explicit still wins
        monkeypatch.delenv("REPRO_LEASE_SECONDS")
        assert resolve_lease_seconds(None) == DEFAULT_LEASE_SECONDS

    def test_lease_junk_env_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_LEASE_SECONDS", "banana")
        assert resolve_lease_seconds(None) == DEFAULT_LEASE_SECONDS

    def test_lease_floor(self):
        assert resolve_lease_seconds(0.0) == 0.05

    def test_heartbeat_defaults_to_lease_fraction(self):
        assert resolve_heartbeat_seconds(None, 30.0) == pytest.approx(
            30.0 * DEFAULT_HEARTBEAT_FRACTION
        )

    def test_heartbeat_clamped_to_half_lease(self, monkeypatch):
        # A heartbeat slower than expiry would make live workers look dead.
        assert resolve_heartbeat_seconds(100.0, 10.0) == 5.0
        monkeypatch.setenv("REPRO_HEARTBEAT_SECONDS", "100")
        assert resolve_heartbeat_seconds(None, 10.0) == 5.0

    def test_worker_ids_are_unique(self):
        ids = {make_worker_id() for _ in range(32)}
        assert len(ids) == 32
        wid = make_worker_id(3)
        assert wid.endswith(":w3")
        assert str(os.getpid()) in wid


class TestLeaseManager:
    def _pair(self, tmp_path, lease_seconds=30.0):
        d = str(tmp_path)
        return (
            LeaseManager(d, "host:1:aaaa", lease_seconds),
            LeaseManager(d, "host:2:bbbb", lease_seconds),
        )

    def test_claim_is_exclusive(self, tmp_path):
        a, b = self._pair(tmp_path)
        assert a.try_claim(0)
        assert not b.try_claim(0)
        assert b.try_claim(1)  # other shards unaffected

    def test_claim_binds_worker_identity(self, tmp_path):
        a, _ = self._pair(tmp_path)
        a.try_claim(2)
        with open(a.lease_path(2)) as fh:
            doc = json.loads(fh.read())
        assert doc["worker"] == "host:1:aaaa" and doc["seq"] == 0

    def test_release_makes_claimable_again(self, tmp_path):
        a, b = self._pair(tmp_path)
        a.try_claim(0)
        a.release(0)
        assert b.try_claim(0)

    def test_heartbeat_changes_content(self, tmp_path):
        a, _ = self._pair(tmp_path)
        a.try_claim(0)
        with open(a.lease_path(0), "rb") as fh:
            before = fh.read()
        a.heartbeat(0, 1)
        with open(a.lease_path(0), "rb") as fh:
            after = fh.read()
        assert after != before
        assert json.loads(after)["seq"] == 1

    def test_expiry_needs_unchanged_content_past_budget(self, tmp_path):
        a, b = self._pair(tmp_path, lease_seconds=0.15)
        a.try_claim(0)
        # First sighting only starts the observer's clock.
        assert b.expired_shards([0]) == []
        time.sleep(0.2)
        assert b.expired_shards([0]) == [0]

    def test_heartbeat_resets_observer_clock(self, tmp_path):
        a, b = self._pair(tmp_path, lease_seconds=0.15)
        a.try_claim(0)
        assert b.expired_shards([0]) == []
        time.sleep(0.1)
        a.heartbeat(0, 1)  # content changed: holder is alive
        time.sleep(0.1)
        assert b.expired_shards([0]) == []

    def test_never_expires_own_or_unleased_shards(self, tmp_path):
        a, _ = self._pair(tmp_path, lease_seconds=0.0)
        a.try_claim(0)
        a.expired_shards([0, 1])
        time.sleep(0.05)
        # Shard 0 is held by this observer, shard 1 has no lease file.
        assert a.expired_shards([0, 1]) == []

    def test_reclaim_removes_lease(self, tmp_path):
        a, b = self._pair(tmp_path)
        a.try_claim(0)
        assert b.reclaim(0)
        assert not os.path.exists(a.lease_path(0))
        assert b.try_claim(0)

    def test_reclaim_lost_race_returns_false(self, tmp_path):
        _, b = self._pair(tmp_path)
        assert not b.reclaim(3)  # no lease file: a peer beat us to it


class _ChaosAbort(BaseException):
    """Sentinel substituted for SIGKILL by the in-process chaos tests."""


def _raise_chaos():
    raise _ChaosAbort()


class TestJoinSweep:
    def test_single_join_bitwise(self, shapes, reference, tmp_path):
        got = _join(shapes, str(tmp_path / "j"))
        assert_timings_equal(got, reference)
        assert get_counter("fabric.claims") == NSHARDS
        assert get_counter("fabric.commits") == NSHARDS

    def test_join_after_complete_evaluates_nothing(
        self, shapes, reference, tmp_path
    ):
        jdir = str(tmp_path / "j")
        _join(shapes, jdir)
        reset_counters()
        got = _join(shapes, jdir)
        assert_timings_equal(got, reference)
        assert get_counter("fabric.claims") == 0  # merge barrier only

    def test_wedged_worker_shard_reclaimed_within_budget(
        self, shapes, reference, tmp_path
    ):
        """The acceptance bar: a worker whose heartbeat stopped but whose
        lease file persists (process wedged, not dead) loses its shard
        within the lease budget and the sweep still completes bitwise."""
        jdir = str(tmp_path / "j")
        lease_dir = os.path.join(jdir, "leases")
        os.makedirs(lease_dir)
        with open(os.path.join(lease_dir, "shard_00000.lease"), "w") as fh:
            fh.write('{"worker": "ghost:999:dead", "seq": 4}\n')
        t0 = time.monotonic()
        got = _join(shapes, jdir, lease_seconds=0.5, heartbeat_seconds=0.1)
        elapsed = time.monotonic() - t0
        assert_timings_equal(got, reference)
        assert get_counter("fabric.lease_expired") >= 1
        assert get_counter("fabric.reclaims") >= 1
        assert get_counter("fabric.steals") >= 1
        assert get_counter("fabric.claims") == NSHARDS
        # Reclaim waits out the budget, not some multiple of it.
        assert elapsed < 30.0

    @pytest.mark.parametrize("point", ["claim", "eval", "commit"])
    def test_kill_seam_then_rejoin_bitwise(
        self, shapes, reference, tmp_path, point
    ):
        """Dying at each lease-lifecycle boundary leaves a journal a
        fresh worker finishes to a byte-identical merge."""
        jdir = str(tmp_path / "j")
        chaos = ChaosWorkerKill(point, after=1, action=_raise_chaos)
        with pytest.raises(_ChaosAbort):
            _join(shapes, jdir, chaos=chaos, lease_seconds=0.4,
                  heartbeat_seconds=0.1)
        assert get_counter("faults.chaos_worker_kills") == 1
        reset_counters()
        got = _join(shapes, jdir, lease_seconds=0.4, heartbeat_seconds=0.1)
        assert_timings_equal(got, reference)
        # The victim's shard was re-run unless it died pre-commit with
        # nothing journaled; either way nothing is evaluated twice here.
        assert get_counter("fabric.commits") >= 1

    def test_unusable_journal_dir_degrades_to_plain_eval(
        self, shapes, reference, tmp_path
    ):
        blocker = tmp_path / "not-a-dir"
        blocker.write_text("occupied")
        got = _join(shapes, str(blocker))
        assert_timings_equal(got, reference)
        assert get_counter("fabric.degraded") == 1
        assert get_counter("fabric.claims") == 0

    def test_lease_io_failure_degrades_to_serial_finish(
        self, shapes, reference, tmp_path, monkeypatch
    ):
        def boom(self, shard):
            raise OSError("lease filesystem went away")

        monkeypatch.setattr(LeaseManager, "try_claim", boom)
        got = _join(shapes, str(tmp_path / "j"))
        assert_timings_equal(got, reference)
        assert get_counter("fabric.degraded") == 1
        assert get_counter("fabric.serial_fallback_shards") == NSHARDS

    def test_two_sequential_joiners_split_disjoint_work(
        self, shapes, reference, tmp_path
    ):
        """A second joiner attaching to a half-done journal claims only
        what is open (the concurrent version runs in the CI fabric job)."""
        jdir = str(tmp_path / "j")
        chaos = ChaosWorkerKill("claim", after=3, action=_raise_chaos)
        with pytest.raises(_ChaosAbort):
            _join(shapes, jdir, chaos=chaos)
        reset_counters()
        got = _join(shapes, jdir, lease_seconds=0.4, heartbeat_seconds=0.1)
        assert_timings_equal(got, reference)
        assert get_counter("fabric.claims") < NSHARDS


class TestFabricSweep:
    def test_two_workers_bitwise_and_compacted(
        self, shapes, reference, tmp_path
    ):
        jdir = str(tmp_path / "j")
        got = fabric_sweep(
            shapes, FP64, HYPOTHETICAL_4SM, jdir,
            workers=2, shard_rows=SHARD_ROWS,
        )
        assert_timings_equal(got, reference)
        # The parent compacts once the children are reaped.
        assert os.path.exists(os.path.join(jdir, "checkpoint.json"))

    def test_parent_fallback_when_no_worker_can_run(
        self, shapes, reference, tmp_path, monkeypatch
    ):
        def no_fork():
            raise OSError("fork denied")

        monkeypatch.setattr(
            fabric_mod.multiprocessing, "get_context", no_fork
        )
        got = fabric_sweep(
            shapes, FP64, HYPOTHETICAL_4SM, str(tmp_path / "j"),
            workers=2, shard_rows=SHARD_ROWS,
        )
        assert_timings_equal(got, reference)
        assert get_counter("fabric.pool_unusable") == 1
        assert get_counter("fabric.parent_fallback") == 1
        assert get_counter("fabric.serial_fallback_shards") == NSHARDS


class TestRouting:
    """``evaluate_corpus_sharded`` fronts the fabric."""

    def _sharded(self, shapes, **kw):
        return evaluate_corpus_sharded(
            shapes, FP64, HYPOTHETICAL_4SM, shard_rows=SHARD_ROWS, **kw
        )

    def test_join_flag_routes_through_fabric(
        self, shapes, reference, tmp_path
    ):
        got = self._sharded(shapes, journal=str(tmp_path / "j"), join=True)
        assert_timings_equal(got, reference)
        assert get_counter("fabric.claims") == NSHARDS

    def test_workers_route_through_fabric(self, shapes, reference, tmp_path):
        got = self._sharded(shapes, journal=str(tmp_path / "j"), workers=2)
        assert_timings_equal(got, reference)

    def test_fabric_without_journal_is_config_error(self, shapes):
        with pytest.raises(ConfigurationError, match="journal"):
            self._sharded(shapes, workers=2)
        with pytest.raises(ConfigurationError, match="journal"):
            self._sharded(shapes, join=True)

    def test_broken_fabric_falls_back_to_journaled_path(
        self, shapes, reference, tmp_path, monkeypatch
    ):
        def broken(*a, **kw):
            raise RuntimeError("fabric exploded")

        monkeypatch.setattr(fabric_mod, "join_sweep", broken)
        got = self._sharded(shapes, journal=str(tmp_path / "j"), join=True)
        assert_timings_equal(got, reference)
        assert get_counter("fabric.unusable") == 1
        assert get_counter("harness.shards_ok") == NSHARDS  # ordinary path


@pytest.mark.slow
class TestRealWorkerKill:
    """The full contract, through the CLI, with a genuine SIGKILL of a
    fabric worker mid-sweep (the CI ``fabric`` job runs the full
    claim/eval/commit matrix plus concurrent ``--join`` processes)."""

    def _run(self, args, tmp_path):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [os.path.join(os.path.dirname(__file__), "..", "..", "src")]
            + env.get("PYTHONPATH", "").split(os.pathsep)
        )
        env["REPRO_NO_DISK_CACHE"] = "1"
        env["REPRO_EVAL_CACHE_DIR"] = str(tmp_path / "evalcache")
        return subprocess.run(
            [sys.executable, "-m", "repro", "sweep", "--size", "400",
             "--dtype", "fp64", "--gpu", "hypothetical_4sm",
             "--shard-rows", "128"] + args,
            env=env, capture_output=True, text=True, timeout=600,
        )

    def test_worker_killed_mid_eval_merge_is_byte_identical(self, tmp_path):
        ref = str(tmp_path / "ref.npz")
        out = str(tmp_path / "fabric.npz")
        plain = self._run(
            ["--journal", str(tmp_path / "jref"), "--out", ref], tmp_path
        )
        assert plain.returncode == 0, plain.stderr
        survived = self._run(
            ["--journal", str(tmp_path / "jfab"), "--workers", "2",
             "--lease-seconds", "2", "--heartbeat-seconds", "0.4",
             "--chaos-worker-kill", "eval:1", "--out", out],
            tmp_path,
        )
        # Worker 0 dies by SIGKILL; worker 1 reclaims and the parent
        # still exits 0 with a complete merge.
        assert survived.returncode == 0, survived.stderr
        assert "fabric" in survived.stdout
        a = np.load(ref, allow_pickle=False)
        b = np.load(out, allow_pickle=False)
        assert sorted(a.files) == sorted(b.files)
        for key in a.files:
            assert a[key].tobytes() == b[key].tobytes(), key
