"""Durable sweep: kill/resume bitwise exactness, drain, and pool hygiene.

End-to-end tests of the journaled :func:`evaluate_corpus_sharded` path:
chaos kill points (via the in-process ``action`` seam and, once, a real
``SIGKILL`` through the ``repro sweep`` CLI), SIGINT drains, degraded
filesystems, and the no-leaked-workers guarantee.
"""

import errno
import multiprocessing
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.corpus.generator import CorpusSpec, generate_corpus
from repro.errors import SweepInterrupted
from repro.faults import ChaosKill
from repro.gemm import FP64
from repro.gpu import HYPOTHETICAL_4SM
from repro.harness import parallel
from repro.harness.journal import RESUMABLE_EXIT_STATUS
from repro.harness.parallel import clear_eval_memo, evaluate_corpus_sharded
from repro.harness.vectorized import evaluate_corpus
from repro.obs.counters import get_counter, reset_counters

from .test_parallel import assert_timings_equal

SIZE = 600
SHARD_ROWS = 128  # -> 5 shards
NSHARDS = 5


@pytest.fixture(scope="module")
def shapes():
    return generate_corpus(CorpusSpec(size=SIZE))


@pytest.fixture(scope="module")
def reference(shapes):
    return evaluate_corpus(shapes, FP64, HYPOTHETICAL_4SM)


@pytest.fixture(autouse=True)
def _fresh_state(monkeypatch):
    clear_eval_memo()
    reset_counters()
    monkeypatch.setattr(parallel, "_SHARD_FAULT_HOOK", None)
    monkeypatch.setattr(parallel, "_DISPATCH_HOOK", None)
    yield
    clear_eval_memo()
    reset_counters()


class _ChaosAbort(BaseException):
    """Sentinel substituted for SIGKILL by the in-process chaos tests."""


def _sweep(shapes, journal, resume=False, jobs=1, chaos=None, **kw):
    return evaluate_corpus_sharded(
        shapes,
        FP64,
        HYPOTHETICAL_4SM,
        jobs=jobs,
        shard_rows=SHARD_ROWS,
        journal=journal,
        resume=resume,
        chaos=chaos,
        **kw,
    )


class TestChaosResume:
    @pytest.mark.parametrize("kill_after", [1, 3])
    def test_kill_at_shard_boundary_resumes_bitwise(
        self, shapes, reference, tmp_path, kill_after
    ):
        jdir = str(tmp_path / "j")
        chaos = ChaosKill(kill_after, action=_raise_chaos)
        with pytest.raises(_ChaosAbort):
            _sweep(shapes, jdir, chaos=chaos)
        assert chaos.fired
        assert get_counter("faults.chaos_kills") == 1
        reset_counters()
        got = _sweep(shapes, jdir, resume=True)
        assert_timings_equal(got, reference)
        assert get_counter("journal.skipped_shards") == kill_after
        assert get_counter("harness.shards_ok") == NSHARDS - kill_after

    def test_mid_shard_kill_loses_only_open_shards(
        self, shapes, reference, tmp_path
    ):
        """A crash *inside* a shard (started, never done) re-runs it."""
        jdir = str(tmp_path / "j")
        chaos = ChaosKill(2, action=_raise_chaos)
        with pytest.raises(_ChaosAbort):
            _sweep(shapes, jdir, chaos=chaos)
        # The journal now holds shard_started records for shards that
        # never committed — exactly the mid-shard SIGKILL footprint.
        reset_counters()
        got = _sweep(shapes, jdir, resume=True)
        assert_timings_equal(got, reference)
        assert get_counter("journal.skipped_shards") == 2

    def test_completed_journal_resume_evaluates_nothing(
        self, shapes, reference, tmp_path
    ):
        jdir = str(tmp_path / "j")
        _sweep(shapes, jdir)
        reset_counters()
        got = _sweep(shapes, jdir, resume=True)
        assert_timings_equal(got, reference)
        assert get_counter("journal.skipped_shards") == NSHARDS
        assert get_counter("harness.shards_ok") == 0  # zero evaluations

    def test_resume_without_prior_journal_runs_everything(
        self, shapes, reference, tmp_path
    ):
        got = _sweep(shapes, str(tmp_path / "fresh"), resume=True)
        assert_timings_equal(got, reference)
        assert get_counter("journal.skipped_shards") == 0

    def test_pool_chaos_resume_bitwise(self, shapes, reference, tmp_path):
        """Kill points also hold in the multiprocess dispatch loop."""
        jdir = str(tmp_path / "j")
        chaos = ChaosKill(1, action=_raise_chaos)
        with pytest.raises(_ChaosAbort):
            _sweep(shapes, jdir, jobs=2, chaos=chaos)
        _wait_for_no_children()
        assert multiprocessing.active_children() == []
        got = _sweep(shapes, jdir, resume=True, jobs=2)
        assert_timings_equal(got, reference)


def _raise_chaos():
    raise _ChaosAbort()


def _wait_for_no_children(timeout=10.0):
    deadline = time.monotonic() + timeout
    while multiprocessing.active_children() and time.monotonic() < deadline:
        time.sleep(0.05)


class TestDrain:
    def test_sigint_drains_to_resumable_state(
        self, shapes, reference, tmp_path, monkeypatch
    ):
        """A real SIGINT mid-sweep journals progress and raises
        :class:`SweepInterrupted`; resume finishes bitwise."""
        jdir = str(tmp_path / "j")

        def send_sigint(event, shard_index):
            if event == "done" and shard_index == 0:
                os.kill(os.getpid(), signal.SIGINT)

        monkeypatch.setattr(parallel, "_DISPATCH_HOOK", send_sigint)
        with pytest.raises(SweepInterrupted) as exc_info:
            _sweep(shapes, jdir)
        exc = exc_info.value
        assert exc.journal_dir == jdir
        assert 1 <= exc.completed < exc.total == NSHARDS
        assert "--resume" in str(exc)
        assert get_counter("harness.drained_interrupts") == 1
        monkeypatch.setattr(parallel, "_DISPATCH_HOOK", None)
        got = _sweep(shapes, jdir, resume=True)
        assert_timings_equal(got, reference)

    def test_interrupt_reaps_pool_workers(
        self, shapes, tmp_path, monkeypatch
    ):
        """No worker-process leak on interrupt (the PR's leak fix)."""

        def interrupt(event, shard_index):
            raise SweepInterrupted()

        monkeypatch.setattr(parallel, "_DISPATCH_HOOK", interrupt)
        with pytest.raises(SweepInterrupted):
            _sweep(shapes, str(tmp_path / "j"), jobs=2)
        _wait_for_no_children()
        assert multiprocessing.active_children() == []

    def test_default_sigint_behavior_restored_after_sweep(
        self, shapes, tmp_path
    ):
        before = signal.getsignal(signal.SIGINT)
        _sweep(shapes, str(tmp_path / "j"))
        assert signal.getsignal(signal.SIGINT) is before


class TestDegraded:
    def test_enospc_journal_degrades_but_sweep_completes(
        self, shapes, reference, tmp_path, monkeypatch
    ):
        def no_space(fd):
            raise OSError(errno.ENOSPC, "No space left on device")

        monkeypatch.setattr(os, "fsync", no_space)
        got = _sweep(shapes, str(tmp_path / "j"))
        assert_timings_equal(got, reference)
        assert get_counter("harness.journal.degraded") == 1


@pytest.mark.slow
class TestRealSigkill:
    """The full contract, through the CLI, with a genuine SIGKILL."""

    def _run(self, args, tmp_path):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [os.path.join(os.path.dirname(__file__), "..", "..", "src")]
            + env.get("PYTHONPATH", "").split(os.pathsep)
        )
        env["REPRO_NO_DISK_CACHE"] = "1"
        env["REPRO_EVAL_CACHE_DIR"] = str(tmp_path / "evalcache")
        return subprocess.run(
            [sys.executable, "-m", "repro", "sweep", "--size", "400",
             "--dtype", "fp64", "--gpu", "hypothetical_4sm",
             "--shard-rows", "128"] + args,
            env=env, capture_output=True, text=True, timeout=600,
        )

    def test_sigkill_then_resume_is_byte_identical(self, tmp_path):
        import numpy as np

        jdir = str(tmp_path / "journal")
        ref = str(tmp_path / "ref.npz")
        out = str(tmp_path / "resumed.npz")
        killed = self._run(
            ["--journal", jdir + "-ref", "--out", ref], tmp_path
        )
        assert killed.returncode == 0, killed.stderr
        chaos = self._run(
            ["--journal", jdir, "--chaos-kill-after", "1"], tmp_path
        )
        assert chaos.returncode == -signal.SIGKILL
        resumed = self._run(
            ["--journal", jdir, "--resume", "--out", out], tmp_path
        )
        assert resumed.returncode == 0, resumed.stderr
        assert "skipped (journal)" in resumed.stdout
        a, b = np.load(ref, allow_pickle=False), np.load(out, allow_pickle=False)
        assert sorted(a.files) == sorted(b.files)
        for key in a.files:
            assert a[key].tobytes() == b[key].tobytes(), key


class TestExitStatus:
    def test_resumable_status_reserved(self):
        # EX_TEMPFAIL-style: distinct from success/failure/SIGKILL codes.
        assert RESUMABLE_EXIT_STATUS == 75
