"""Sharded + memoized corpus evaluation: exactness and cache behavior."""

import numpy as np
import pytest

from repro.corpus.generator import CorpusSpec, generate_corpus
from repro.errors import ConfigurationError
from repro.gemm import FP16_FP32, FP64
from repro.gpu import A100, HYPOTHETICAL_4SM
from repro.harness.parallel import (
    clear_eval_memo,
    corpus_fingerprint,
    evaluate_corpus_cached,
    evaluate_corpus_sharded,
    merge_timings,
    wipe_eval_cache,
)
from repro.harness.vectorized import evaluate_corpus


@pytest.fixture(scope="module")
def shapes():
    return generate_corpus(CorpusSpec(size=700))


@pytest.fixture(autouse=True)
def _fresh_memo():
    clear_eval_memo()
    yield
    clear_eval_memo()


def assert_timings_equal(a, b):
    assert a.dtype_name == b.dtype_name and a.gpu_name == b.gpu_name
    np.testing.assert_array_equal(a.shapes, b.shapes)
    np.testing.assert_array_equal(a.streamk, b.streamk)
    np.testing.assert_array_equal(a.singleton, b.singleton)
    np.testing.assert_array_equal(a.cublas, b.cublas)
    np.testing.assert_array_equal(a.oracle, b.oracle)
    if a.cublas_choice is None or b.cublas_choice is None:
        assert a.cublas_choice is None and b.cublas_choice is None
    else:
        np.testing.assert_array_equal(a.cublas_choice, b.cublas_choice)
    assert a.cublas_variant_names == b.cublas_variant_names


class TestSharding:
    def test_sharded_bitwise_identical(self, shapes):
        """Sharding is exact: merged result == single-process result,
        bitwise, for several shard geometries."""
        ref = evaluate_corpus(shapes, FP64, A100)
        for shard_rows in (97, 350, 699):
            got = evaluate_corpus_sharded(
                shapes, FP64, A100, jobs=2, shard_rows=shard_rows
            )
            assert_timings_equal(got, ref)

    def test_jobs_one_is_in_process(self, shapes):
        got = evaluate_corpus_sharded(shapes, FP64, A100, jobs=1)
        assert_timings_equal(got, evaluate_corpus(shapes, FP64, A100))

    def test_tiny_corpus_skips_pool(self):
        small = generate_corpus(CorpusSpec(size=64))
        got = evaluate_corpus_sharded(small, FP64, A100, jobs=8)
        assert_timings_equal(got, evaluate_corpus(small, FP64, A100))

    def test_merge_roundtrip_manual(self, shapes):
        ref = evaluate_corpus(shapes, FP64, A100)
        parts = [
            evaluate_corpus(shapes[:250], FP64, A100),
            evaluate_corpus(shapes[250:500], FP64, A100),
            evaluate_corpus(shapes[500:], FP64, A100),
        ]
        assert_timings_equal(merge_timings(parts), ref)

    def test_merge_rejects_mixed_runs(self, shapes):
        a = evaluate_corpus(shapes[:64], FP64, A100)
        b = evaluate_corpus(shapes[:64], FP16_FP32, A100)
        with pytest.raises(ConfigurationError):
            merge_timings([a, b])
        c = evaluate_corpus(shapes[:64], FP64, HYPOTHETICAL_4SM)
        with pytest.raises(ConfigurationError):
            merge_timings([a, c])
        with pytest.raises(ConfigurationError):
            merge_timings([])


class TestFingerprint:
    def test_sensitive_to_inputs(self, shapes):
        base = corpus_fingerprint(shapes, FP64, A100)
        assert corpus_fingerprint(shapes, FP16_FP32, A100) != base
        assert corpus_fingerprint(shapes, FP64, HYPOTHETICAL_4SM) != base
        perturbed = shapes.copy()
        perturbed[0, 0] += 16
        assert corpus_fingerprint(perturbed, FP64, A100) != base
        assert corpus_fingerprint(shapes[:-1], FP64, A100) != base

    def test_deterministic(self, shapes):
        assert corpus_fingerprint(shapes, FP64, A100) == corpus_fingerprint(
            shapes.copy(), FP64, A100
        )


class TestMemoAndDisk:
    def test_memo_hit_returns_same_object(self, shapes):
        r1 = evaluate_corpus_cached(shapes, FP64, A100)
        r2 = evaluate_corpus_cached(shapes, FP64, A100)
        assert r1 is r2  # second call is the in-process memo

    def test_disk_roundtrip_bitwise(self, shapes, tmp_path):
        r1 = evaluate_corpus_cached(shapes, FP64, A100, cache_dir=str(tmp_path))
        assert any((tmp_path / "eval").iterdir())
        clear_eval_memo()  # cold-process simulation
        r2 = evaluate_corpus_cached(shapes, FP64, A100, cache_dir=str(tmp_path))
        assert r1 is not r2
        assert_timings_equal(r1, r2)

    def test_env_var_cache_dir(self, shapes, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_EVAL_CACHE_DIR", str(tmp_path))
        evaluate_corpus_cached(shapes[:64], FP64, A100)
        assert any((tmp_path / "eval").iterdir())
        assert wipe_eval_cache() == 1
        assert wipe_eval_cache() == 0

    def test_distinct_corpora_distinct_entries(self, shapes, tmp_path):
        evaluate_corpus_cached(shapes[:64], FP64, A100, cache_dir=str(tmp_path))
        evaluate_corpus_cached(shapes[:65], FP64, A100, cache_dir=str(tmp_path))
        assert len(list((tmp_path / "eval").iterdir())) == 2

    def test_unwritable_dir_degrades(self, shapes, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("occupied")
        res = evaluate_corpus_cached(
            shapes[:64], FP64, A100, cache_dir=str(blocker / "nested")
        )
        assert_timings_equal(res, evaluate_corpus(shapes[:64], FP64, A100))
