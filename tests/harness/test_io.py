"""Artifact IO tests."""

import csv
import json

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.harness import timings_to_rows, write_csv, write_json
from repro.metrics import relative_performance


class TestWriteJson:
    def test_numpy_and_stats_serialized(self, tmp_path):
        rp = relative_performance(np.array([2.0]), np.array([1.0]))
        payload = {"stats": rp, "curve": np.arange(3), "n": np.int64(5)}
        path = write_json(str(tmp_path / "out.json"), payload)
        data = json.load(open(path))
        assert data["stats"]["average"] == 2.0
        assert data["curve"] == [0, 1, 2]
        assert data["n"] == 5

    def test_nested_structures(self, tmp_path):
        path = write_json(
            str(tmp_path / "deep.json"), {"a": [{"b": np.float64(1.5)}]}
        )
        assert json.load(open(path)) == {"a": [{"b": 1.5}]}


class TestWriteCsv:
    def test_roundtrip(self, tmp_path):
        path = write_csv(
            str(tmp_path / "t.csv"), ["x", "y"], [[1, 2.5], [3, 4.5]]
        )
        rows = list(csv.reader(open(path)))
        assert rows[0] == ["x", "y"]
        assert rows[1] == ["1", "2.5"]

    def test_row_width_checked(self, tmp_path):
        with pytest.raises(ConfigurationError):
            write_csv(str(tmp_path / "t.csv"), ["x", "y"], [[1]])


class TestTimingsToRows:
    def test_tabulation(self):
        shapes = np.array([[128, 256, 512], [64, 64, 64]])
        headers, rows = timings_to_rows(
            shapes, streamk=np.array([1e-5, 2e-5]), cublas=np.array([2e-5, 3e-5])
        )
        assert headers == ["m", "n", "k", "streamk", "cublas"]
        assert rows[0] == [128, 256, 512, 1e-5, 2e-5]
