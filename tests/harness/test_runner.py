"""Single-problem runner tests."""

import pytest

from repro.errors import ConfigurationError
from repro.gemm import FP64, Blocking, GemmProblem, TileGrid
from repro.gpu import HYPOTHETICAL_4SM
from repro.harness import run_decomposition, run_schedule
from repro.schedules import DataParallel, StreamK, data_parallel_schedule


@pytest.fixture
def grid():
    return TileGrid(GemmProblem(96, 64, 48, dtype=FP64), Blocking(16, 16, 8))


class TestRunSchedule:
    def test_validated_numeric_run(self, grid):
        run = run_schedule(data_parallel_schedule(grid), HYPOTHETICAL_4SM)
        assert run.max_rel_error is not None and run.max_rel_error < 1e-12
        assert run.time_s > 0
        assert 0 < run.quantization_efficiency <= 1.0

    def test_timing_only_skips_numerics(self, grid):
        run = run_schedule(
            data_parallel_schedule(grid), HYPOTHETICAL_4SM, execute_numeric=False
        )
        assert run.max_rel_error is None

    def test_summary_readable(self, grid):
        run = run_schedule(data_parallel_schedule(grid), HYPOTHETICAL_4SM)
        text = run.summary()
        assert "TFLOP/s" in text and "validated" in text

    def test_invalid_schedule_rejected(self, grid):
        from repro.schedules import CtaWorkItem, Schedule, SegmentRole, TileSegment
        bad = Schedule(
            name="bad",
            grid=grid,
            work_items=(
                CtaWorkItem(0, (TileSegment(0, 0, 1, SegmentRole.OWNER),)),
            ),
        )
        with pytest.raises(ConfigurationError):
            run_schedule(bad, HYPOTHETICAL_4SM)


class TestRunDecomposition:
    def test_default_blocking_from_dtype(self):
        p = GemmProblem(128, 128, 64, dtype=FP64)
        run = run_decomposition(DataParallel(), p, HYPOTHETICAL_4SM)
        assert run.schedule_name == "data_parallel"
        assert run.g == 4  # ceil(128/64)^2 tiles

    def test_custom_blocking(self, grid):
        p = grid.problem
        run = run_decomposition(
            StreamK(g=4), p, HYPOTHETICAL_4SM, blocking=grid.blocking
        )
        assert run.g == 4
        assert run.max_rel_error < 1e-12
