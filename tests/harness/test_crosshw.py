"""Cross-hardware sweep engine tests (harness/crosshw.py).

Covers: sweep structure (one cell per device x schedule, winner per
device), the vectorized quantization-efficiency formulas against the
scalar Figure-1/2 oracle in :mod:`repro.metrics.efficiency`, validation
errors (unknown schedule, duplicate device, unsupported precision), the
table rendering, custom spec-JSON devices, and the obs counters.
"""

import math

import numpy as np
import pytest

from repro.corpus.generator import CorpusSpec, generate_corpus
from repro.errors import ConfigurationError
from repro.gemm.dtypes import get_dtype_config
from repro.gemm.problem import GemmProblem
from repro.gemm.tiling import Blocking, TileGrid
from repro.gpu.spec import A100, H100_SXM, HYPOTHETICAL_4SM, RTX3090, V100_SXM2
from repro.harness.crosshw import (
    CROSSHW_SCHEDULES,
    format_crosshw_table,
    quantization_efficiency_corpus,
    run_crosshw,
)
from repro.harness.parallel import clear_eval_memo
from repro.metrics.efficiency import quantization_efficiency
from repro.obs.counters import get_counter, reset_counters
from repro.schedules.data_parallel import data_parallel_schedule
from repro.schedules.stream_k import stream_k_schedule

FP16 = get_dtype_config("fp16_fp32")


@pytest.fixture(scope="module")
def shapes():
    return generate_corpus(CorpusSpec(size=120))


@pytest.fixture(autouse=True)
def _fresh_memo():
    clear_eval_memo()
    yield
    clear_eval_memo()


class TestSweepStructure:
    def test_one_cell_per_device_schedule(self, shapes):
        res = run_crosshw(
            ["a100", "rtx3090"], ["data_parallel", "stream_k"], shapes, FP16
        )
        assert len(res.cells) == 4
        assert set(res.winners) == {"a100", "rtx3090"}
        assert res.num_sms == {"a100": 108, "rtx3090": 82}
        assert res.corpus_size == shapes.shape[0]

    def test_accepts_spec_instances(self, shapes):
        res = run_crosshw([A100, H100_SXM], ["stream_k"], shapes, FP16)
        assert {c.gpu_name for c in res.cells} == {"a100", "h100_sxm"}

    def test_winner_has_lowest_geomean(self, shapes):
        res = run_crosshw(
            ["a100", "h100_sxm"],
            ["data_parallel", "fixed_split", "stream_k"],
            shapes,
            FP16,
        )
        for name, winner in res.winners.items():
            device_cells = [c for c in res.cells if c.gpu_name == name]
            best = min(device_cells, key=lambda c: c.geomean_time_s)
            assert best.schedule == winner
            assert best.vs_winner == 1.0
            for c in device_cells:
                assert c.vs_winner >= 1.0
                assert math.isfinite(c.geomean_time_s)
                assert c.geomean_time_s > 0.0

    def test_streamk_quant_eff_beats_dp_on_every_device(self, shapes):
        # The structural claim: quantization-free utilization holds for
        # any (SM count, rate) point, not just the paper's 108-SM A100.
        res = run_crosshw(
            ["a100", "h100_sxm", "v100_sxm2", "rtx3090"],
            ["data_parallel", "stream_k"],
            shapes,
            FP16,
        )
        for name in res.winners:
            dp = res.cell(name, "data_parallel")
            sk = res.cell(name, "stream_k")
            assert sk.mean_quant_eff > dp.mean_quant_eff
            assert sk.mean_quant_eff > 0.9

    def test_ensemble_rows_have_no_quant_eff(self, shapes):
        res = run_crosshw(["a100"], ["cublas", "oracle"], shapes, FP16)
        assert all(c.mean_quant_eff is None for c in res.cells)

    def test_custom_json_device(self, shapes, tmp_path):
        path = tmp_path / "mygpu.json"
        path.write_text(HYPOTHETICAL_4SM.to_json())
        res = run_crosshw([str(path)], ["stream_k"], shapes, FP16)
        assert res.cells[0].gpu_name == "hypothetical_4sm"
        assert res.num_sms["hypothetical_4sm"] == 4

    def test_counters(self, shapes):
        reset_counters()
        run_crosshw(["a100", "rtx3090"], ["stream_k"], shapes, FP16)
        assert get_counter("crosshw.devices") == 2
        assert get_counter("crosshw.evaluations") == 2


class TestValidation:
    def test_unknown_schedule_lists_supported(self, shapes):
        with pytest.raises(ConfigurationError, match="fixed_split"):
            run_crosshw(["a100"], ["bogus"], shapes, FP16)

    def test_empty_gpus(self, shapes):
        with pytest.raises(ConfigurationError, match="at least one GPU"):
            run_crosshw([], ["stream_k"], shapes, FP16)

    def test_empty_schedules(self, shapes):
        with pytest.raises(ConfigurationError, match="at least one schedule"):
            run_crosshw(["a100"], [], shapes, FP16)

    def test_duplicate_device(self, shapes):
        with pytest.raises(ConfigurationError, match="twice"):
            run_crosshw(["a100", "a100"], ["stream_k"], shapes, FP16)

    def test_unsupported_precision_names_device(self, shapes):
        # V100-class parts predate bf16; the sweep refuses up front
        # instead of failing mid-evaluation.
        with pytest.raises(ConfigurationError, match="v100_sxm2"):
            run_crosshw(
                ["a100", "v100_sxm2"],
                ["stream_k"],
                shapes,
                get_dtype_config("bf16_fp32"),
            )

    def test_unknown_gpu_lists_presets(self, shapes):
        with pytest.raises(ConfigurationError, match="h100_sxm"):
            run_crosshw(["h100"], ["stream_k"], shapes, FP16)


class TestQuantizationEfficiencyCorpus:
    """The vectorized formulas vs the scalar Figure-1/2 oracle."""

    CASES = [(1152, 1152, 128), (384, 896, 256), (128, 128, 512), (256, 640, 64)]

    def _grid(self, m, n, k, gpu):
        problem = GemmProblem(m, n, k, dtype=FP16)
        return TileGrid(problem, Blocking(*FP16.default_blocking))

    @pytest.mark.parametrize("gpu", [A100, H100_SXM, RTX3090, V100_SXM2, HYPOTHETICAL_4SM])
    def test_data_parallel_matches_scalar(self, gpu):
        shapes = np.array(self.CASES, dtype=np.int64)
        qe = quantization_efficiency_corpus(shapes, "data_parallel", FP16, gpu)
        for i, (m, n, k) in enumerate(self.CASES):
            grid = self._grid(m, n, k, gpu)
            expected = quantization_efficiency(
                data_parallel_schedule(grid), gpu.num_sms
            )
            assert qe[i] == pytest.approx(expected)

    @pytest.mark.parametrize("gpu", [A100, H100_SXM, RTX3090, V100_SXM2, HYPOTHETICAL_4SM])
    def test_stream_k_matches_scalar(self, gpu):
        shapes = np.array(self.CASES, dtype=np.int64)
        qe = quantization_efficiency_corpus(shapes, "stream_k", FP16, gpu)
        for i, (m, n, k) in enumerate(self.CASES):
            grid = self._grid(m, n, k, gpu)
            g = min(gpu.num_sms, grid.total_iters)
            expected = quantization_efficiency(
                stream_k_schedule(grid, g), gpu.num_sms
            )
            assert qe[i] == pytest.approx(expected)

    def test_fixed_split_bounded(self):
        shapes = np.array(self.CASES, dtype=np.int64)
        qe = quantization_efficiency_corpus(shapes, "fixed_split", FP16, A100)
        assert np.all(qe > 0.0) and np.all(qe <= 1.0)

    def test_ensembles_return_none(self):
        shapes = np.array(self.CASES, dtype=np.int64)
        assert quantization_efficiency_corpus(shapes, "cublas", FP16, A100) is None
        assert quantization_efficiency_corpus(shapes, "oracle", FP16, A100) is None

    def test_unknown_schedule_raises(self):
        shapes = np.array(self.CASES, dtype=np.int64)
        with pytest.raises(ConfigurationError, match="supports"):
            quantization_efficiency_corpus(shapes, "bogus", FP16, A100)


class TestTable:
    def test_table_contents(self, shapes):
        res = run_crosshw(
            ["a100", "h100_sxm"], ["data_parallel", "stream_k"], shapes, FP16
        )
        text = format_crosshw_table(res)
        assert "cross-hardware sweep" in text
        assert "a100" in text and "h100_sxm" in text
        assert "<-- winner" in text
        assert "108" in text and "132" in text
        # ensemble-free sweep: every row carries a quantization efficiency
        assert "-" not in [row.split()[4] for row in text.splitlines()[3:]]

    def test_schedule_families_constant(self):
        assert CROSSHW_SCHEDULES == (
            "data_parallel", "fixed_split", "stream_k", "cublas", "oracle"
        )
