"""WAL shard journal: framing, replay edge cases, digests, degradation.

These are unit tests against :mod:`repro.harness.journal` directly — no
worker pools.  The end-to-end kill/resume contract lives in
``test_resume.py`` (and, with real SIGKILL, in the CI chaos job).
"""

import errno
import json
import os
import struct

import numpy as np
import pytest

from repro.corpus.generator import CorpusSpec, generate_corpus
from repro.gemm import FP64
from repro.gpu import HYPOTHETICAL_4SM
from repro.harness import journal as journal_mod
from repro.harness.journal import (
    JOURNAL_FORMAT_VERSION,
    RESUMABLE_EXIT_STATUS,
    ShardJournal,
    default_journal_dir,
    read_timings_npz,
    read_wal_records,
    timings_digest,
    write_timings_npz,
)
from repro.harness.vectorized import evaluate_corpus
from repro.obs.counters import get_counter, reset_counters

from .test_parallel import assert_timings_equal

KEY = "corpus-key-aaaa"
BOUNDS = [(0, 40), (40, 80), (80, 96)]


@pytest.fixture(autouse=True)
def _fresh_counters():
    reset_counters()
    yield
    reset_counters()


@pytest.fixture(scope="module")
def timings():
    shapes = generate_corpus(CorpusSpec(size=96))
    return evaluate_corpus(shapes, FP64, HYPOTHETICAL_4SM)


def _open(tmp_path, resume=False, key=KEY, bounds=BOUNDS):
    return ShardJournal.open(
        str(tmp_path), corpus_key=key, bounds=bounds, resume=resume
    )


class TestFraming:
    def test_wal_round_trip(self, tmp_path):
        jr = _open(tmp_path)
        jr.record_started(0, fingerprint="f0")
        jr.record_abandoned(1, reason="watchdog")
        jr.close()
        records, good, torn = read_wal_records(jr.wal_path)
        assert not torn
        assert good == os.path.getsize(jr.wal_path)
        assert [r["kind"] for r in records] == [
            "sweep_header", "shard_started", "shard_abandoned",
        ]
        assert records[0]["corpus"] == KEY
        assert records[0]["v"] == JOURNAL_FORMAT_VERSION
        assert records[0]["bounds"] == [[lo, hi] for lo, hi in BOUNDS]

    def test_empty_wal_file(self, tmp_path):
        path = str(tmp_path / "wal.bin")
        open(path, "wb").close()
        records, good, torn = read_wal_records(path)
        assert records == [] and good == 0 and not torn

    def test_missing_wal_file(self, tmp_path):
        records, good, torn = read_wal_records(str(tmp_path / "absent.bin"))
        assert records == [] and good == 0 and not torn

    def test_torn_tail_mid_frame(self, tmp_path):
        jr = _open(tmp_path)
        jr.record_started(0)
        jr.close()
        full = os.path.getsize(jr.wal_path)
        with open(jr.wal_path, "ab") as fh:  # half a frame: torn append
            fh.write(journal_mod._MAGIC + struct.pack("<I", 10))
        records, good, torn = read_wal_records(jr.wal_path)
        assert torn and good == full
        assert [r["kind"] for r in records] == ["sweep_header", "shard_started"]

    def test_torn_tail_bad_crc(self, tmp_path):
        jr = _open(tmp_path)
        jr.record_started(0)
        jr.close()
        full = os.path.getsize(jr.wal_path)
        payload = b'{"kind":"shard_done","shard":9}'
        with open(jr.wal_path, "ab") as fh:
            fh.write(
                journal_mod._MAGIC
                + journal_mod._FRAME.pack(len(payload), 0xDEADBEEF)
                + payload
            )
        records, good, torn = read_wal_records(jr.wal_path)
        assert torn and good == full
        assert all(r.get("shard") != 9 for r in records)

    def test_impossible_length_is_torn(self, tmp_path):
        jr = _open(tmp_path)
        jr.close()
        with open(jr.wal_path, "ab") as fh:
            fh.write(journal_mod._MAGIC + journal_mod._FRAME.pack(1 << 30, 0))
        records, good, torn = read_wal_records(jr.wal_path)
        assert torn and len(records) == 1  # header only


class TestNpzCodec:
    def test_round_trip_bitwise(self, tmp_path, timings):
        path = str(tmp_path / "t.npz")
        write_timings_npz(path, timings)
        back = read_timings_npz(path)
        assert_timings_equal(back, timings)
        assert timings_digest(back) == timings_digest(timings)

    def test_digest_is_content_sensitive(self, timings):
        mutated = read_back = None
        d0 = timings_digest(timings)
        streamk = timings.streamk.copy()
        streamk[0] += 1e-9
        import dataclasses

        mutated = dataclasses.replace(timings, streamk=streamk)
        assert timings_digest(mutated) != d0

    def test_read_missing_returns_none(self, tmp_path):
        assert read_timings_npz(str(tmp_path / "nope.npz")) is None

    def test_read_garbage_returns_none(self, tmp_path):
        path = str(tmp_path / "bad.npz")
        with open(path, "wb") as fh:
            fh.write(b"\x00garbage, not a zip")
        assert read_timings_npz(path) is None

    def test_failed_write_leaves_no_temp(self, tmp_path, timings, monkeypatch):
        def no_space(src, dst):
            raise OSError(errno.ENOSPC, "No space left on device")

        monkeypatch.setattr(os, "replace", no_space)
        with pytest.raises(OSError):
            write_timings_npz(str(tmp_path / "t.npz"), timings)
        assert [p for p in os.listdir(tmp_path) if p.endswith(".tmp")] == []


class TestReplay:
    def _commit(self, tmp_path, timings, shards=(0,)):
        jr = _open(tmp_path)
        for s in shards:
            jr.record_started(s, fingerprint="fp%d" % s)
            assert jr.record_done(s, timings, fingerprint="fp%d" % s)
        jr.close()
        return jr

    def test_resume_replays_completions(self, tmp_path, timings):
        self._commit(tmp_path, timings, shards=(0, 2))
        jr = _open(tmp_path, resume=True)
        assert sorted(jr.completed) == [0, 2]
        assert jr.bounds == BOUNDS
        assert get_counter("journal.replayed") >= 3  # header + 2 done
        assert_timings_equal(jr.load_completed(0), timings)
        jr.close()

    def test_no_resume_reinitializes(self, tmp_path, timings):
        self._commit(tmp_path, timings)
        jr = _open(tmp_path, resume=False)
        assert jr.completed == {}
        jr.close()

    def test_duplicate_shard_done_counted_once(self, tmp_path, timings):
        jr = _open(tmp_path)
        jr.record_done(1, timings)
        jr.record_done(1, timings)  # idempotent retry duplicate
        jr.close()
        reset_counters()
        jr = _open(tmp_path, resume=True)
        assert sorted(jr.completed) == [1]
        assert get_counter("journal.duplicate_done") == 1
        jr.close()

    def test_foreign_corpus_fingerprint_ignored(self, tmp_path, timings):
        self._commit(tmp_path, timings)
        reset_counters()
        jr = _open(tmp_path, resume=True, key="some-other-corpus")
        assert jr.completed == {}  # never trusted
        assert get_counter("journal.fingerprint_mismatch") >= 1
        jr.close()

    def test_torn_tail_truncated_on_replay(self, tmp_path, timings):
        self._commit(tmp_path, timings)
        wal = os.path.join(str(tmp_path), "wal.bin")
        good = os.path.getsize(wal)
        with open(wal, "ab") as fh:
            fh.write(b"RKJ1\x07")  # crash mid-append
        reset_counters()
        jr = _open(tmp_path, resume=True)
        assert sorted(jr.completed) == [0]
        assert get_counter("journal.torn_tail_truncated") == 1
        assert os.path.getsize(wal) >= good  # truncated then reopened append
        jr.close()
        records, _, torn = read_wal_records(wal)
        assert not torn

    def test_resume_adopts_journal_bounds(self, tmp_path, timings):
        self._commit(tmp_path, timings)
        jr = ShardJournal.open(
            str(tmp_path),
            corpus_key=KEY,
            bounds=[(0, 96)],  # caller guesses a different layout
            resume=True,
        )
        assert jr.bounds == BOUNDS  # the journal header owns the layout
        jr.close()

    def test_digest_mismatch_forgets_completion(self, tmp_path, timings):
        jr = self._commit(tmp_path, timings)
        # Corrupt the shard artifact behind the journaled digest.
        with open(jr.shard_path(0), "r+b") as fh:
            fh.seek(0)
            fh.write(b"\x00\x00\x00\x00")
        jr2 = _open(tmp_path, resume=True)
        assert 0 in jr2.completed
        assert jr2.load_completed(0) is None  # verified, refused
        assert 0 not in jr2.completed
        assert get_counter("journal.digest_mismatch") == 1
        jr2.close()

    def test_empty_directory_is_fresh(self, tmp_path):
        jr = _open(tmp_path, resume=True)
        assert jr.completed == {} and jr.bounds == BOUNDS
        jr.close()


class TestCompaction:
    def test_compact_then_resume(self, tmp_path, timings):
        jr = _open(tmp_path)
        for s in (0, 1, 2):
            jr.record_done(s, timings)
        jr.compact()
        jr.close()
        assert get_counter("journal.compacted") == 1
        # WAL is header-only; the checkpoint carries the done map.
        records, _, torn = read_wal_records(
            os.path.join(str(tmp_path), "wal.bin")
        )
        assert not torn and [r["kind"] for r in records] == ["sweep_header"]
        with open(os.path.join(str(tmp_path), "checkpoint.json")) as fh:
            ck = json.load(fh)
        assert sorted(ck["done"]) == ["0", "1", "2"]
        reset_counters()
        jr2 = _open(tmp_path, resume=True)
        assert sorted(jr2.completed) == [0, 1, 2]
        assert_timings_equal(jr2.load_completed(1), timings)
        jr2.close()

    def test_corrupt_checkpoint_counted_and_ignored(self, tmp_path, timings):
        jr = _open(tmp_path)
        jr.record_done(0, timings)
        jr.compact()
        jr.close()
        with open(os.path.join(str(tmp_path), "checkpoint.json"), "w") as fh:
            fh.write("{broken json")
        reset_counters()
        jr2 = _open(tmp_path, resume=True)
        # Checkpoint lost, but the post-compaction WAL is header-only, so
        # the journal matches with zero completions: shards re-run.
        assert jr2.completed == {}
        assert get_counter("journal.checkpoint_corrupt") == 1
        jr2.close()


class TestDegradation:
    def test_enospc_on_append_degrades(self, tmp_path, timings, monkeypatch):
        jr = _open(tmp_path)

        def no_space(fd):
            raise OSError(errno.ENOSPC, "No space left on device")

        monkeypatch.setattr(os, "fsync", no_space)
        jr.record_started(0)
        assert jr.degraded
        assert get_counter("harness.journal.degraded") == 1
        # Every later operation is a silent no-op.
        assert jr.record_done(0, timings) is None
        jr.record_abandoned(1, "x")
        jr.compact()
        assert get_counter("harness.journal.degraded") == 1
        jr.close()

    def test_unwritable_directory_degrades_at_open(self, tmp_path, timings):
        victim = tmp_path / "ro"
        victim.mkdir()
        os.chmod(victim, 0o555)
        try:
            jr = ShardJournal.open(
                str(victim / "j"), corpus_key=KEY, bounds=BOUNDS
            )
            if os.getuid() == 0:
                pytest.skip("root ignores directory permissions")
            assert jr.degraded
            assert get_counter("harness.journal.degraded") == 1
            assert jr.record_done(0, timings) is None
        finally:
            os.chmod(victim, 0o755)

    def test_degraded_journal_never_raises(self, tmp_path, timings, monkeypatch):
        jr = _open(tmp_path)
        monkeypatch.setattr(
            os, "fsync", lambda fd: (_ for _ in ()).throw(OSError(30, "EROFS"))
        )
        jr.record_done(0, timings)  # degrades
        monkeypatch.undo()
        jr.record_done(1, timings)  # still a no-op, must not resurrect
        assert jr.completed == {}
        jr.close()


class TestLeaseRecords:
    """WAL replay of the fabric's liveness records: torn, duplicate,
    and orphaned lease records must never perturb completion state."""

    def test_lease_record_round_trip(self, tmp_path):
        jr = _open(tmp_path)
        jr.record_claimed(0, "host:1:aaaa")
        jr.record_heartbeat(0, "host:1:aaaa", 3)
        jr.record_reclaimed(0, "host:2:bbbb")
        jr.close()
        records, _, torn = read_wal_records(jr.wal_path)
        assert not torn
        assert [r["kind"] for r in records[1:]] == [
            "shard_claimed", "shard_heartbeat", "shard_reclaimed",
        ]
        assert records[1]["worker"] == "host:1:aaaa"
        assert records[2]["seq"] == 3

    def test_replay_fills_claims_map(self, tmp_path):
        jr = _open(tmp_path)
        jr.record_claimed(0, "host:1:aaaa")
        jr.record_claimed(2, "host:2:bbbb")
        jr.close()
        jr2 = _open(tmp_path, resume=True)
        assert jr2.claims == {0: "host:1:aaaa", 2: "host:2:bbbb"}
        jr2.close()

    def test_duplicate_claim_first_wins_deterministically(self, tmp_path):
        jr = _open(tmp_path)
        jr.record_claimed(1, "host:1:aaaa")
        jr.record_claimed(1, "host:2:bbbb")  # double-execution race
        jr.close()
        reset_counters()
        jr2 = _open(tmp_path, resume=True)
        assert jr2.claims[1] == "host:1:aaaa"
        assert get_counter("journal.duplicate_claim") == 1
        jr2.close()

    def test_orphan_reclaim_tolerated(self, tmp_path):
        jr = _open(tmp_path)
        jr.record_reclaimed(2, "host:9:ffff")  # no visible prior claim
        jr.close()
        reset_counters()
        jr2 = _open(tmp_path, resume=True)
        assert jr2.claims == {}
        assert get_counter("journal.orphan_reclaim") == 1
        jr2.close()

    def test_reclaim_clears_claim(self, tmp_path):
        jr = _open(tmp_path)
        jr.record_claimed(0, "host:1:aaaa")
        jr.record_reclaimed(0, "host:2:bbbb")
        jr.close()
        jr2 = _open(tmp_path, resume=True)
        assert jr2.claims == {}
        jr2.close()

    def test_lease_records_never_imply_completion(self, tmp_path, timings):
        """Liveness-only: completion comes exclusively from shard_done."""
        jr = _open(tmp_path)
        jr.record_claimed(0, "w")
        jr.record_heartbeat(0, "w", 1)
        jr.record_claimed(1, "w")
        jr.record_done(1, timings)
        jr.close()
        jr2 = _open(tmp_path, resume=True)
        assert sorted(jr2.completed) == [1]
        assert 1 not in jr2.claims  # completed shards shed their claim
        jr2.close()

    def test_torn_claim_record_truncated_on_private_replay(
        self, tmp_path, timings
    ):
        jr = _open(tmp_path)
        jr.record_done(0, timings)
        jr.record_claimed(1, "host:1:aaaa")
        jr.close()
        with open(jr.wal_path, "ab") as fh:
            fh.write(journal_mod._MAGIC + struct.pack("<I", 64))  # torn
        reset_counters()
        jr2 = _open(tmp_path, resume=True)
        assert sorted(jr2.completed) == [0]
        assert jr2.claims == {1: "host:1:aaaa"}
        assert get_counter("journal.torn_tail_truncated") == 1
        jr2.close()
        _, _, torn = read_wal_records(jr2.wal_path)
        assert not torn


class TestSharedMode:
    def _open_shared(self, tmp_path, key=KEY, bounds=BOUNDS, **kw):
        return ShardJournal.open_shared(
            str(tmp_path), corpus_key=key, bounds=bounds, **kw
        )

    def test_first_arrival_initializes_later_arrival_attaches(
        self, tmp_path, timings
    ):
        a = self._open_shared(tmp_path)
        assert a.shared and not a.degraded
        a.record_done(0, timings)
        b = self._open_shared(tmp_path)
        assert sorted(b.completed) == [0]  # attach absorbed the commit
        a.close()
        b.close()

    def test_refresh_absorbs_peer_commits(self, tmp_path, timings):
        a = self._open_shared(tmp_path)
        b = self._open_shared(tmp_path)
        assert b.completed == {}
        a.record_done(2, timings)
        assert sorted(b.refresh_completed()) == [2]
        assert_timings_equal(b.load_completed(2), timings)
        a.close()
        b.close()

    def test_interleaved_appends_from_two_handles_all_replay(
        self, tmp_path
    ):
        """O_APPEND keeps two live writers' frames intact and ordered."""
        a = self._open_shared(tmp_path)
        b = self._open_shared(tmp_path)
        for i in range(3):
            a.record_claimed(i, "worker-a")
            b.record_heartbeat(i, "worker-b", i)
        a.close()
        b.close()
        records, _, torn = read_wal_records(a.wal_path)
        assert not torn
        assert len(records) == 1 + 6  # header + every interleaved append

    def test_shared_replay_never_truncates_torn_tail(
        self, tmp_path, timings
    ):
        a = self._open_shared(tmp_path)
        a.record_done(0, timings)
        a.close()
        with open(a.wal_path, "ab") as fh:
            fh.write(b"RKJ1\x03")  # a peer's append caught in flight
        size_before = os.path.getsize(a.wal_path)
        reset_counters()
        b = self._open_shared(tmp_path)
        assert sorted(b.completed) == [0]  # committed prefix still replays
        assert os.path.getsize(a.wal_path) == size_before
        assert get_counter("journal.torn_tail_truncated") == 0
        b.close()

    def test_foreign_corpus_is_reinitialized(self, tmp_path, timings):
        a = self._open_shared(tmp_path)
        a.record_done(0, timings)
        a.close()
        reset_counters()
        b = self._open_shared(tmp_path, key="a-different-corpus")
        assert b.completed == {}
        assert get_counter("journal.fingerprint_mismatch") >= 1
        b.close()

    def test_stale_init_lock_is_stolen(self, tmp_path):
        # An initializer died between taking the lock and writing the
        # header: joiners must not wait forever.
        os.makedirs(tmp_path, exist_ok=True)
        open(os.path.join(str(tmp_path), ".init.lock"), "w").close()
        jr = self._open_shared(tmp_path, init_timeout_s=0.2)
        assert not jr.degraded
        assert get_counter("journal.init_lock_stolen") == 1
        records, _, _ = read_wal_records(jr.wal_path)
        assert records[0]["kind"] == "sweep_header"
        jr.close()

    def test_bounds_adopted_counter_fires_only_on_difference(
        self, tmp_path, timings
    ):
        a = self._open_shared(tmp_path)
        a.record_done(0, timings)
        a.close()
        reset_counters()
        same = self._open_shared(tmp_path, bounds=BOUNDS)
        assert get_counter("journal.bounds_adopted") == 0
        same.close()
        other = self._open_shared(tmp_path, bounds=[(0, 96)])
        assert other.bounds == BOUNDS  # the header owns the layout
        assert get_counter("journal.bounds_adopted") == 1
        other.close()


class TestModuleSurface:
    def test_resumable_exit_status_is_distinct(self):
        assert RESUMABLE_EXIT_STATUS == 75
        assert RESUMABLE_EXIT_STATUS not in (0, 1, 2)

    def test_default_journal_dir_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOURNAL_DIR", raising=False)
        assert default_journal_dir() is None
        monkeypatch.setenv("REPRO_JOURNAL_DIR", "/tmp/jdir")
        assert default_journal_dir() == "/tmp/jdir"
