"""Experiment entry-point tests on reduced corpora."""

import numpy as np
import pytest

from repro.corpus import CorpusSpec
from repro.gemm import FP16_FP32, FP64
from repro.harness import (
    fig1_data_parallel_quantization,
    fig2_tile_splitting,
    fig3_hybrid_schedules,
    fig4_corpus_statistics,
    fig7_speedup_vs_cublas,
    fig8_analytical_model,
    fig9_strong_scaling,
    relative_performance_table,
    roofline_landscapes,
)

SMALL = CorpusSpec(size=400)


class TestIllustrativeFigures:
    def test_fig1_ceilings(self):
        out = fig1_data_parallel_quantization()
        assert out["a_128x128"]["utilization"] == pytest.approx(0.75)
        assert out["b_128x64"]["utilization"] == pytest.approx(0.90)
        assert out["a_128x128"]["tiles"] == 9
        assert out["b_128x64"]["waves"] == 5

    def test_fig2_stream_k_wins(self):
        out = fig2_tile_splitting()
        assert out["b_stream_k_g4"]["quantization_efficiency"] == pytest.approx(1.0)
        assert out["b_stream_k_g4"]["iters_per_cta"] == 72  # paper's number
        assert out["a_fixed_split_s2"]["quantization_efficiency"] == pytest.approx(0.9)

    def test_fig3_two_tile_dominates_one_tile(self):
        out = fig3_hybrid_schedules()
        assert (
            out["c_two_tile_dp"]["utilization"]
            > out["b_dp_one_tile"]["utilization"]
        )
        assert out["b_dp_one_tile"]["wait_cycles"] > 0
        assert out["c_two_tile_dp"]["k_aligned_fraction"] > 0.5

    def test_fig9_strong_scaling_speedup(self):
        out = fig9_strong_scaling()
        assert out["speedup"] > 2.0
        assert out["data_parallel"]["utilization"] == pytest.approx(0.25)


class TestCorpusExperiments:
    def test_fig4_statistics(self):
        out = fig4_corpus_statistics()
        assert out["count"] == 32_824
        assert out["axis_min"] >= 128 and out["axis_max"] <= 8192
        assert out["volume_orders_of_magnitude"] > 4.5

    def test_fig8_matches_paper(self):
        out = fig8_analytical_model()
        for key in ("a_256x3584x8192", "b_1024x1024x1024", "c_128x128x16384"):
            assert out[key]["g_best"] == out[key]["paper_g_best"]

    def test_tables_have_four_columns(self):
        cols = relative_performance_table(FP64, spec=SMALL)
        assert len(cols) == 4
        names = list(cols)
        assert names[0].startswith("vs CUTLASS 64x64x16")
        assert "vs cuBLAS" in names[1]
        assert "oracle" in names[3]

    def test_fig7_reports_both_regimes(self):
        out = fig7_speedup_vs_cublas(FP64, spec=SMALL)
        assert out["compute_bound_count"] > 0
        assert out["speedup"].shape == out["intensity"].shape

    def test_rooflines_have_all_four_systems(self):
        out = roofline_landscapes(FP16_FP32, spec=SMALL, num_bins=6)
        assert set(out) == {
            "data_parallel_singleton",
            "cublas_like",
            "cutlass_oracle",
            "stream_k",
        }
        for system in out.values():
            assert system["band_width"] >= 0
            assert system["summary"]

    def test_timings_cached_across_calls(self):
        t1 = relative_performance_table(FP64, spec=SMALL)
        t2 = relative_performance_table(FP64, spec=SMALL)
        assert t1["vs cuBLAS"].average == t2["vs cuBLAS"].average
