"""Vectorized engine consistency tests.

The corpus numbers are only as good as the agreement between the vectorized
formulas and the object-path implementations, so every family is checked
element-by-element against its scalar twin.
"""

import numpy as np
import pytest

from repro.corpus import CorpusSpec, generate_corpus
from repro.errors import ConfigurationError
from repro.gemm import FP16_FP32, FP64, Blocking, GemmProblem
from repro.gpu import A100
from repro.ensembles import (
    KernelVariant,
    StreamKLibrary,
    cublas_select,
    oracle_select,
    singleton_variant,
    variant_time_s,
)
from repro.harness.vectorized import (
    dp_times,
    evaluate_corpus,
    fixed_split_times,
    streamk_times,
)

SHAPES = generate_corpus(CorpusSpec(size=60, seed=7))


class TestDpTimesMatchScalar:
    @pytest.mark.parametrize("dtype", [FP64, FP16_FP32])
    def test_matches_variant_time(self, dtype):
        blocking = Blocking(*dtype.default_blocking)
        vec = dp_times(SHAPES, blocking, dtype, A100)
        variant = singleton_variant(dtype)
        for i in range(0, len(SHAPES), 7):
            p = GemmProblem(*(int(v) for v in SHAPES[i]), dtype=dtype)
            assert vec[i] == pytest.approx(variant_time_s(variant, p, A100), rel=1e-9)


class TestFixedSplitMatchesScalar:
    @pytest.mark.parametrize("s", [2, 8, 32])
    def test_matches_variant_time(self, s):
        blocking = Blocking(128, 128, 32)
        vec = fixed_split_times(SHAPES, blocking, s, FP16_FP32, A100)
        variant = KernelVariant("fixed_split", blocking, s=s)
        for i in range(0, len(SHAPES), 11):
            p = GemmProblem(*(int(v) for v in SHAPES[i]), dtype=FP16_FP32)
            assert vec[i] == pytest.approx(variant_time_s(variant, p, A100), rel=1e-9)

    def test_s1_degenerates_to_dp(self):
        blocking = Blocking(128, 128, 32)
        assert np.allclose(
            fixed_split_times(SHAPES, blocking, 1, FP16_FP32, A100),
            dp_times(SHAPES, blocking, FP16_FP32, A100),
        )


class TestStreamKMatchesLibrary:
    @pytest.mark.parametrize("dtype", [FP64, FP16_FP32])
    def test_matches_library_time(self, dtype):
        lib = StreamKLibrary(A100, dtype)
        vec = streamk_times(SHAPES, dtype, A100, params=lib.params)
        for i in range(0, len(SHAPES), 5):
            p = GemmProblem(*(int(v) for v in SHAPES[i]), dtype=dtype)
            assert vec[i] == pytest.approx(lib.time_s(p), rel=1e-6), str(p)


class TestEvaluateCorpus:
    @pytest.fixture(scope="class")
    def result(self):
        return evaluate_corpus(SHAPES, FP16_FP32, A100)

    def test_all_systems_positive(self, result):
        for col in (result.streamk, result.singleton, result.cublas, result.oracle):
            assert (col > 0).all()
            assert col.shape == (len(SHAPES),)

    def test_oracle_never_worse_than_singleton(self, result):
        assert (result.oracle <= result.singleton * (1 + 1e-12)).all()

    def test_cublas_choice_recorded(self, result):
        assert result.cublas_choice.shape == (len(SHAPES),)
        assert len(result.cublas_variant_names) == 24

    def test_cublas_matches_scalar_selection(self, result):
        for i in range(0, len(SHAPES), 13):
            p = GemmProblem(*(int(v) for v in SHAPES[i]), dtype=FP16_FP32)
            choice = cublas_select(p, A100)
            assert result.cublas[i] == pytest.approx(choice.time_s, rel=1e-9)
            assert (
                result.cublas_variant_names[result.cublas_choice[i]]
                == choice.variant.name
            )

    def test_oracle_matches_scalar_oracle(self, result):
        for i in range(0, len(SHAPES), 17):
            p = GemmProblem(*(int(v) for v in SHAPES[i]), dtype=FP16_FP32)
            assert result.oracle[i] == pytest.approx(
                oracle_select(p, A100).time_s, rel=1e-9
            )

    def test_bad_shape_array_rejected(self):
        with pytest.raises(ConfigurationError):
            dp_times(np.ones((4, 2)), Blocking(128, 128, 32), FP16_FP32, A100)
